//! Exhaustive semantic checking of a [`Netlist`].
//!
//! [`Netlist::check`] answers "is this graph usable?" with the *first*
//! structural problem it finds — the right contract for constructors and
//! decoders, which bail on the first defect anyway. An auditor (`hlp
//! check`, `hlp fsck`, the daemon's validate-on-put) needs the opposite:
//! **every** problem in one pass, each as a typed [`Violation`] with
//! enough context to name the offending net in a report, and no panics
//! no matter how hostile the graph is (all traversals here are
//! iterative, so adversarial depth cannot blow the stack, and every id
//! is range-checked before it indexes anything).
//!
//! The checker grades findings: structural defects that would make the
//! mapper, simulator, or estimator produce garbage (cycles, dangling
//! ids, arity mismatches) are [`Severity::Error`]; hygiene findings a
//! valid flow can still consume (unreachable nodes) are
//! [`Severity::Warning`]. [`CheckReport::is_clean`] ignores warnings, so
//! a swept-but-imperfect netlist still passes `fsck`.

use crate::graph::{Netlist, NodeId, NodeKind};
use std::fmt;

/// Sentinel for a latch whose data input was never connected (mirrors
/// the private constant in [`crate::graph`]; the text codec serializes
/// it as `-`).
const UNCONNECTED: NodeId = NodeId(u32::MAX);

/// Word-level buses wider than this violate the simulator's 64-lane /
/// 64-bit word contract (`gatesim` packs one bus bit per `u64` lane and
/// the datapath generator caps `--width` at 64).
pub const MAX_BUS_WIDTH: usize = 64;

/// How severe a [`Violation`] is.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
pub enum Severity {
    /// Hygiene finding: the flow can still consume the netlist.
    Warning,
    /// Structural defect: downstream stages would panic or mis-measure.
    Error,
}

impl fmt::Display for Severity {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Severity::Warning => write!(f, "warning"),
            Severity::Error => write!(f, "error"),
        }
    }
}

/// One semantic problem found by [`check_netlist`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum Violation {
    /// Two nodes drive the same net name (names are the net identity in
    /// BLIF and in every report, so a duplicate is a multiply-driven
    /// net).
    MultiplyDriven {
        /// The contested net name.
        name: String,
        /// Id of the first driver.
        first: NodeId,
        /// Id of the second driver.
        second: NodeId,
    },
    /// A fanin, latch-data, or output reference points past the node
    /// table.
    DanglingRef {
        /// Name of the referencing node (or output port).
        node: String,
        /// The out-of-range id.
        target: u32,
    },
    /// A latch whose data input was never connected — its net has no
    /// driver.
    UndrivenLatch {
        /// The latch's net name.
        node: String,
    },
    /// Fanin count disagrees with the truth-table input count (a
    /// truncated or padded LUT init).
    ArityMismatch {
        /// Name of the offending node.
        node: String,
        /// Number of fanins on the node.
        fanins: usize,
        /// Number of inputs its truth table declares.
        table_inputs: usize,
    },
    /// A LUT init word carries set bits beyond its `2^n` rows.
    InitWordOutOfRange {
        /// Name of the offending node.
        node: String,
    },
    /// The combinational subgraph has a cycle through this node.
    CombinationalCycle {
        /// A node on the cycle.
        node: String,
    },
    /// Two primary outputs claim the same port name.
    DuplicatePort {
        /// The contested port name.
        port: String,
    },
    /// An output bus (ports sharing a stem with numeric lane suffixes)
    /// is wider than [`MAX_BUS_WIDTH`] lanes.
    BusWidthOverflow {
        /// The bus stem.
        bus: String,
        /// Its lane count.
        lanes: usize,
    },
    /// A node unreachable (backwards) from every primary output, latch,
    /// and input port — dead logic a sweep would remove.
    Orphan {
        /// The unreachable node's name.
        node: String,
    },
}

impl Violation {
    /// The severity grade of this violation.
    pub fn severity(&self) -> Severity {
        match self {
            Violation::Orphan { .. } => Severity::Warning,
            _ => Severity::Error,
        }
    }
}

impl fmt::Display for Violation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Violation::MultiplyDriven {
                name,
                first,
                second,
            } => write!(
                f,
                "net `{name}` multiply driven (nodes {first} and {second})"
            ),
            Violation::DanglingRef { node, target } => {
                write!(f, "`{node}` references missing node id {target}")
            }
            Violation::UndrivenLatch { node } => {
                write!(f, "latch `{node}` has no data driver")
            }
            Violation::ArityMismatch {
                node,
                fanins,
                table_inputs,
            } => write!(
                f,
                "`{node}` has {fanins} fanins but a {table_inputs}-input table"
            ),
            Violation::InitWordOutOfRange { node } => {
                write!(f, "`{node}` has LUT init bits beyond its row count")
            }
            Violation::CombinationalCycle { node } => {
                write!(f, "combinational cycle through `{node}`")
            }
            Violation::DuplicatePort { port } => {
                write!(f, "output port `{port}` declared twice")
            }
            Violation::BusWidthOverflow { bus, lanes } => write!(
                f,
                "output bus `{bus}` has {lanes} lanes (limit {MAX_BUS_WIDTH})"
            ),
            Violation::Orphan { node } => {
                write!(f, "`{node}` is unreachable from every output")
            }
        }
    }
}

/// Everything [`check_netlist`] found, in deterministic (id) order.
#[derive(Clone, Debug, Default)]
pub struct CheckReport {
    /// All findings, errors and warnings interleaved in discovery order
    /// (which is node-id order, so reports are deterministic).
    pub violations: Vec<Violation>,
    /// Number of nodes examined.
    pub checked_nodes: usize,
}

impl CheckReport {
    /// Count of [`Severity::Error`] findings.
    pub fn errors(&self) -> usize {
        self.violations
            .iter()
            .filter(|v| v.severity() == Severity::Error)
            .count()
    }

    /// Count of [`Severity::Warning`] findings.
    pub fn warnings(&self) -> usize {
        self.violations.len() - self.errors()
    }

    /// True when no **error**-grade violation was found (warnings are
    /// hygiene, not corruption).
    pub fn is_clean(&self) -> bool {
        self.errors() == 0
    }
}

impl fmt::Display for CheckReport {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.violations.is_empty() {
            return write!(f, "ok: {} nodes checked", self.checked_nodes);
        }
        for v in &self.violations {
            writeln!(f, "{}: {v}", v.severity())?;
        }
        write!(
            f,
            "{} nodes checked: {} errors, {} warnings",
            self.checked_nodes,
            self.errors(),
            self.warnings()
        )
    }
}

/// Strips a trailing run of ASCII digits: the bus stem of a lane port
/// name (`s13` → `s`), or `None` if the name has no digit suffix.
fn bus_stem(port: &str) -> Option<&str> {
    let trimmed = port.trim_end_matches(|c: char| c.is_ascii_digit());
    if trimmed.len() == port.len() || trimmed.is_empty() {
        None
    } else {
        Some(trimmed)
    }
}

/// Runs every semantic check over `nl` and reports **all** findings.
///
/// Unlike [`Netlist::check`] this never stops at the first problem, and
/// it tolerates graphs no constructor can build (decoded from hostile
/// bytes via [`crate::graph::Netlist`] internals): every id is
/// range-checked before use and cycle detection is an iterative Kahn
/// peel, so no input can panic or overflow the stack.
///
/// # Examples
///
/// ```
/// use netlist::{check_netlist, Netlist, TruthTable};
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_logic("g", vec![a], TruthTable::inverter());
/// nl.mark_output("o", g);
/// let report = check_netlist(&nl);
/// assert!(report.is_clean());
/// ```
pub fn check_netlist(nl: &Netlist) -> CheckReport {
    let mut report = CheckReport {
        violations: Vec::new(),
        checked_nodes: nl.num_nodes(),
    };
    let n = nl.num_nodes() as u32;

    // Multiply-driven nets: two nodes with one name. Sort-based so the
    // scan is deterministic and allocation-bounded (no hash iteration).
    let mut by_name: Vec<(&str, NodeId)> = nl
        .nodes()
        .map(|(id, node)| (node.name.as_str(), id))
        .collect();
    by_name.sort();
    for pair in by_name.windows(2) {
        if pair[0].0 == pair[1].0 {
            report.violations.push(Violation::MultiplyDriven {
                name: pair[0].0.to_string(),
                first: pair[0].1,
                second: pair[1].1,
            });
        }
    }

    // Per-node structural checks. `dangling[id]` remembers nodes whose
    // references escape the table so cycle detection can skip the edges
    // it must not follow.
    for (_, node) in nl.nodes() {
        match &node.kind {
            NodeKind::Logic { fanins, table } => {
                if fanins.len() != table.num_inputs() {
                    report.violations.push(Violation::ArityMismatch {
                        node: node.name.clone(),
                        fanins: fanins.len(),
                        table_inputs: table.num_inputs(),
                    });
                }
                for f in fanins {
                    if f.0 >= n {
                        report.violations.push(Violation::DanglingRef {
                            node: node.name.clone(),
                            target: f.0,
                        });
                    }
                }
                // LUT init rows past 2^n must be zero. `TruthTable`
                // masks them on construction, so a finding here means
                // the table type's invariant was bypassed.
                let rows = 1usize << table.num_inputs().min(6);
                let tail = if rows >= 64 {
                    u64::MAX
                } else {
                    (1u64 << rows) - 1
                };
                if table
                    .words()
                    .first()
                    .is_some_and(|w| table.num_inputs() < 6 && w & !tail != 0)
                {
                    report.violations.push(Violation::InitWordOutOfRange {
                        node: node.name.clone(),
                    });
                }
            }
            NodeKind::Latch { data, .. } => {
                if *data == UNCONNECTED {
                    report.violations.push(Violation::UndrivenLatch {
                        node: node.name.clone(),
                    });
                } else if data.0 >= n {
                    report.violations.push(Violation::DanglingRef {
                        node: node.name.clone(),
                        target: data.0,
                    });
                }
            }
            _ => {}
        }
    }

    // Output ports: in-range targets, unique names, bounded buses.
    let mut ports: Vec<&str> = Vec::with_capacity(nl.outputs().len());
    for (port, id) in nl.outputs() {
        if id.0 >= n {
            report.violations.push(Violation::DanglingRef {
                node: port.clone(),
                target: id.0,
            });
        }
        ports.push(port.as_str());
    }
    ports.sort_unstable();
    for pair in ports.windows(2) {
        if pair[0] == pair[1] {
            report.violations.push(Violation::DuplicatePort {
                port: pair[0].to_string(),
            });
        }
    }
    ports.dedup();
    let mut stems: Vec<&str> = ports.iter().copied().filter_map(bus_stem).collect();
    stems.sort_unstable();
    let mut i = 0;
    while i < stems.len() {
        let mut j = i + 1;
        while j < stems.len() && stems[j] == stems[i] {
            j += 1;
        }
        if j - i > MAX_BUS_WIDTH {
            report.violations.push(Violation::BusWidthOverflow {
                bus: stems[i].to_string(),
                lanes: j - i,
            });
        }
        i = j;
    }

    // Combinational cycles: iterative Kahn peel over the logic
    // subgraph, following only in-range fanin edges (dangling ids were
    // already reported above and must not index the degree arrays).
    let nodes = nl.num_nodes();
    let mut indeg = vec![0usize; nodes];
    let mut fanouts: Vec<Vec<NodeId>> = vec![Vec::new(); nodes];
    for (id, node) in nl.nodes() {
        if let NodeKind::Logic { fanins, .. } = &node.kind {
            for f in fanins {
                if f.0 < n {
                    indeg[id.index()] += 1;
                    fanouts[f.index()].push(id);
                }
            }
        }
    }
    let mut queue: Vec<NodeId> = nl
        .nodes()
        .filter(|(id, _)| indeg[id.index()] == 0 || nl.is_source(*id))
        .map(|(id, _)| id)
        .collect();
    let mut peeled = vec![false; nodes];
    while let Some(id) = queue.pop() {
        if peeled[id.index()] {
            continue;
        }
        peeled[id.index()] = true;
        for &fo in &fanouts[id.index()] {
            // A source node never waits on its fanins (latch outputs
            // break combinational feedback), so only logic consumers
            // count down.
            if nl.is_source(fo) || peeled[fo.index()] {
                continue;
            }
            indeg[fo.index()] -= 1;
            if indeg[fo.index()] == 0 {
                queue.push(fo);
            }
        }
    }
    for (id, node) in nl.nodes() {
        if matches!(node.kind, NodeKind::Logic { .. }) && !peeled[id.index()] {
            report.violations.push(Violation::CombinationalCycle {
                node: node.name.clone(),
            });
        }
    }

    // Orphans: iterative backwards reachability from outputs, latches,
    // and input ports (the same liveness rule as `Netlist::sweep`, so a
    // swept netlist reports zero).
    let mut live = vec![false; nodes];
    let mut stack: Vec<NodeId> = Vec::new();
    for (_, id) in nl.outputs() {
        if id.0 < n {
            stack.push(*id);
        }
    }
    for &l in nl.latches() {
        stack.push(l);
    }
    for &i in nl.inputs() {
        stack.push(i);
    }
    while let Some(id) = stack.pop() {
        if live[id.index()] {
            continue;
        }
        live[id.index()] = true;
        for f in nl.fanins(id) {
            if f.0 < n {
                stack.push(*f);
            }
        }
    }
    for (id, node) in nl.nodes() {
        if !live[id.index()] {
            report.violations.push(Violation::Orphan {
                node: node.name.clone(),
            });
        }
    }

    report
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::{Netlist, Node, NodeKind};
    use crate::truth::TruthTable;

    /// Assembles a netlist from raw parts, bypassing the builder's
    /// asserts — how hostile decoded graphs reach the checker.
    fn raw(nodes: Vec<Node>, outputs: Vec<(&str, u32)>) -> Netlist {
        let inputs = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Input))
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        let latches = nodes
            .iter()
            .enumerate()
            .filter(|(_, n)| matches!(n.kind, NodeKind::Latch { .. }))
            .map(|(i, _)| NodeId(i as u32))
            .collect();
        Netlist::from_parts_unindexed(
            "raw".to_string(),
            nodes,
            inputs,
            outputs
                .into_iter()
                .map(|(p, id)| (p.to_string(), NodeId(id)))
                .collect(),
            latches,
        )
    }

    fn input(name: &str) -> Node {
        Node {
            name: name.to_string(),
            kind: NodeKind::Input,
        }
    }

    fn logic(name: &str, fanins: Vec<u32>, table: TruthTable) -> Node {
        Node {
            name: name.to_string(),
            kind: NodeKind::Logic {
                fanins: fanins.into_iter().map(NodeId).collect(),
                table,
            },
        }
    }

    #[test]
    fn clean_netlist_reports_nothing() {
        let mut nl = Netlist::new("ok");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
        nl.mark_output("o", g);
        let r = check_netlist(&nl);
        assert!(r.violations.is_empty(), "{r}");
        assert!(r.is_clean());
        assert_eq!(r.checked_nodes, 3);
    }

    #[test]
    fn golden_combinational_loop() {
        // g1 -> g2 -> g1, both fed by input a.
        let nodes = vec![
            input("a"),
            logic("g1", vec![0, 2], TruthTable::and(2)),
            logic("g2", vec![1, 0], TruthTable::or(2)),
        ];
        let nl = raw(nodes, vec![("o", 2)]);
        let r = check_netlist(&nl);
        let cycles: Vec<_> = r
            .violations
            .iter()
            .filter(|v| matches!(v, Violation::CombinationalCycle { .. }))
            .collect();
        assert_eq!(cycles.len(), 2, "both loop members flagged: {r}");
        assert!(!r.is_clean());
        // Exactly the expected kind — no collateral findings.
        assert!(r
            .violations
            .iter()
            .all(|v| matches!(v, Violation::CombinationalCycle { .. })));
    }

    #[test]
    fn golden_multiply_driven_net() {
        let nodes = vec![
            input("a"),
            logic("x", vec![0], TruthTable::buffer()),
            logic("x", vec![0], TruthTable::inverter()),
        ];
        let nl = raw(nodes, vec![("o", 1), ("p", 2)]);
        let r = check_netlist(&nl);
        assert_eq!(
            r.violations,
            vec![Violation::MultiplyDriven {
                name: "x".to_string(),
                first: NodeId(1),
                second: NodeId(2),
            }]
        );
    }

    #[test]
    fn golden_truncated_truth_table() {
        // Two fanins against a 1-input table: a truncated LUT init.
        let nodes = vec![
            input("a"),
            input("b"),
            logic("g", vec![0, 1], TruthTable::inverter()),
        ];
        let nl = raw(nodes, vec![("o", 2)]);
        let r = check_netlist(&nl);
        assert_eq!(
            r.violations,
            vec![Violation::ArityMismatch {
                node: "g".to_string(),
                fanins: 2,
                table_inputs: 1,
            }]
        );
    }

    #[test]
    fn dangling_ids_are_reported_not_panicked() {
        let nodes = vec![input("a"), logic("g", vec![0, 99], TruthTable::and(2))];
        let nl = raw(nodes, vec![("o", 1), ("ghost", 77)]);
        let r = check_netlist(&nl);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DanglingRef { target: 99, .. })));
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DanglingRef { target: 77, .. })));
        assert!(!r.is_clean());
    }

    #[test]
    fn undriven_latch_reported() {
        let mut nl = Netlist::new("u");
        nl.add_latch("q", false);
        nl.mark_output("o", NodeId(0));
        let r = check_netlist(&nl);
        assert_eq!(
            r.violations,
            vec![Violation::UndrivenLatch {
                node: "q".to_string()
            }]
        );
    }

    #[test]
    fn orphan_is_a_warning_not_an_error() {
        let mut nl = Netlist::new("dead");
        let a = nl.add_input("a");
        let live = nl.add_logic("live", vec![a], TruthTable::buffer());
        let _dead = nl.add_logic("dead", vec![a], TruthTable::inverter());
        nl.mark_output("o", live);
        let r = check_netlist(&nl);
        assert_eq!(
            r.violations,
            vec![Violation::Orphan {
                node: "dead".to_string()
            }]
        );
        assert!(r.is_clean(), "warnings must not fail the check");
        assert_eq!(r.warnings(), 1);
    }

    #[test]
    fn duplicate_port_and_bus_overflow() {
        let mut nl = Netlist::new("bus");
        let a = nl.add_input("a");
        for i in 0..(MAX_BUS_WIDTH + 1) {
            let g = nl.add_logic(format!("g{i}"), vec![a], TruthTable::buffer());
            nl.mark_output(format!("s{i}"), g);
        }
        nl.mark_output("dup", a);
        nl.mark_output("dup", a);
        let r = check_netlist(&nl);
        assert!(r
            .violations
            .iter()
            .any(|v| matches!(v, Violation::DuplicatePort { .. })));
        assert!(r.violations.iter().any(|v| matches!(
            v,
            Violation::BusWidthOverflow { bus, lanes } if bus == "s" && *lanes == MAX_BUS_WIDTH + 1
        )));
    }

    #[test]
    fn sixty_four_lane_bus_is_legal() {
        let mut nl = Netlist::new("bus64");
        let a = nl.add_input("a");
        for i in 0..MAX_BUS_WIDTH {
            let g = nl.add_logic(format!("g{i}"), vec![a], TruthTable::buffer());
            nl.mark_output(format!("s{i}"), g);
        }
        assert!(check_netlist(&nl).is_clean());
    }

    #[test]
    fn latch_feedback_is_not_a_cycle() {
        let mut nl = Netlist::new("toggle");
        let en = nl.add_input("en");
        let q = nl.add_latch("q", false);
        let d = nl.add_logic("d", vec![q, en], TruthTable::xor(2));
        nl.set_latch_data(q, d);
        nl.mark_output("out", q);
        let r = check_netlist(&nl);
        assert!(r.violations.is_empty(), "{r}");
    }

    #[test]
    fn deep_chain_does_not_overflow_the_stack() {
        // 200k-node inverter chain: a recursive DFS would blow the
        // stack; the iterative peel and sweep must not.
        let mut nl = Netlist::new("deep");
        let mut prev = nl.add_input("i");
        for k in 0..200_000u32 {
            prev = nl.add_logic(format!("n{k}"), vec![prev], TruthTable::inverter());
        }
        nl.mark_output("o", prev);
        assert!(check_netlist(&nl).violations.is_empty());
    }
}
