//! The gate-level netlist graph.
//!
//! A [`Netlist`] is a directed acyclic graph of Boolean nodes. Nodes are one
//! of: primary input, constant, combinational logic (a fanin list plus a
//! [`TruthTable`]), or latch (a D-flip-flop bit whose output is the node
//! itself and whose data input is another node). Primary outputs are named
//! references to nodes. This mirrors the BLIF view of a circuit and is the
//! common IR consumed by the technology mapper, switching-activity
//! estimator, and gate-level simulator.

use crate::truth::TruthTable;
use std::collections::HashMap;
use std::fmt;
use std::sync::OnceLock;

/// Index of a node inside a [`Netlist`].
#[derive(Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct NodeId(pub u32);

impl NodeId {
    /// The index as a usize, for slice addressing.
    #[inline]
    pub fn index(self) -> usize {
        self.0 as usize
    }
}

impl fmt::Debug for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

impl fmt::Display for NodeId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "n{}", self.0)
    }
}

/// What a node computes.
#[derive(Clone, Debug, PartialEq, Eq)]
pub enum NodeKind {
    /// Primary input.
    Input,
    /// Constant 0 or 1 driver.
    Constant(bool),
    /// Combinational node: `table` evaluated over `fanins` (fanin `i` is
    /// truth-table input `i`).
    Logic {
        /// Driving nodes, in truth-table input order.
        fanins: Vec<NodeId>,
        /// The Boolean function.
        table: TruthTable,
    },
    /// One bit of clocked state. The node's value is the latch output `Q`.
    Latch {
        /// The `D` input sampled at each clock edge.
        data: NodeId,
        /// Power-up value.
        init: bool,
    },
}

/// A named node.
#[derive(Clone, Debug)]
pub struct Node {
    /// Net name (unique within the netlist).
    pub name: String,
    /// Function of the node.
    pub kind: NodeKind,
}

/// Errors reported by [`Netlist::check`] and the netlist constructors.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum NetlistError {
    /// A node name was defined twice.
    DuplicateName(String),
    /// A fanin refers to a node id that does not exist.
    DanglingFanin {
        /// Name of the node with the bad fanin.
        node: String,
        /// The out-of-range fanin id.
        fanin: u32,
    },
    /// Fanin count does not match the truth-table input count.
    ArityMismatch {
        /// Name of the offending node.
        node: String,
        /// Number of fanins on the node.
        fanins: usize,
        /// Number of inputs of its truth table.
        table_inputs: usize,
    },
    /// The combinational part of the graph has a cycle through this node.
    CombinationalCycle(String),
    /// A latch whose data input was never connected.
    UnconnectedLatch(String),
    /// Referenced name not present in the netlist.
    UnknownName(String),
}

impl fmt::Display for NetlistError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NetlistError::DuplicateName(n) => write!(f, "duplicate node name `{n}`"),
            NetlistError::DanglingFanin { node, fanin } => {
                write!(f, "node `{node}` has dangling fanin id {fanin}")
            }
            NetlistError::ArityMismatch {
                node,
                fanins,
                table_inputs,
            } => write!(
                f,
                "node `{node}` has {fanins} fanins but a {table_inputs}-input table"
            ),
            NetlistError::CombinationalCycle(n) => {
                write!(f, "combinational cycle through node `{n}`")
            }
            NetlistError::UnconnectedLatch(n) => write!(f, "latch `{n}` has no data input"),
            NetlistError::UnknownName(n) => write!(f, "unknown node name `{n}`"),
        }
    }
}

impl std::error::Error for NetlistError {}

/// Sentinel used for latches created before their data input exists.
const UNCONNECTED: NodeId = NodeId(u32::MAX);

/// A gate-level netlist.
///
/// # Examples
///
/// ```
/// use netlist::{Netlist, TruthTable};
/// let mut nl = Netlist::new("toy");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
/// nl.mark_output("out", g);
/// assert_eq!(nl.num_nodes(), 3);
/// nl.check().unwrap();
/// ```
#[derive(Clone, Debug)]
pub struct Netlist {
    name: String,
    nodes: Vec<Node>,
    inputs: Vec<NodeId>,
    outputs: Vec<(String, NodeId)>,
    latches: Vec<NodeId>,
    /// Name → id index. Lazily (re)built from `nodes` on the first
    /// [`Netlist::find`]: bulk deserialization (the binary codec) skips
    /// the per-node hashing entirely, while incremental construction
    /// keeps it materialized for its duplicate-name assert.
    names: OnceLock<HashMap<String, NodeId>>,
}

impl Netlist {
    /// Creates an empty netlist with a model name.
    pub fn new(name: impl Into<String>) -> Self {
        Netlist {
            name: name.into(),
            nodes: Vec::new(),
            inputs: Vec::new(),
            outputs: Vec::new(),
            latches: Vec::new(),
            names: OnceLock::from(HashMap::new()),
        }
    }

    /// Assembles a netlist directly from its parts, without building the
    /// name index (it materializes on the first [`Netlist::find`]). The
    /// caller guarantees the structural invariants the incremental
    /// builders enforce: unique node names and in-range ids.
    pub(crate) fn from_parts_unindexed(
        name: String,
        nodes: Vec<Node>,
        inputs: Vec<NodeId>,
        outputs: Vec<(String, NodeId)>,
        latches: Vec<NodeId>,
    ) -> Self {
        Netlist {
            name,
            nodes,
            inputs,
            outputs,
            latches,
            names: OnceLock::new(),
        }
    }

    fn build_index(nodes: &[Node]) -> HashMap<String, NodeId> {
        let index: HashMap<String, NodeId> = nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (n.name.clone(), NodeId(i as u32)))
            .collect();
        // Duplicate names would have collapsed into one entry; decoders
        // that defer indexing trust their input's uniqueness, so only
        // debug builds pay for the audit.
        debug_assert_eq!(index.len(), nodes.len(), "duplicate node names");
        index
    }

    /// Model name.
    pub fn name(&self) -> &str {
        &self.name
    }

    /// Renames the model.
    pub fn set_name(&mut self, name: impl Into<String>) {
        self.name = name.into();
    }

    fn push(&mut self, name: String, kind: NodeKind) -> NodeId {
        let id = NodeId(self.nodes.len() as u32);
        if self.names.get().is_none() {
            let _ = self.names.set(Self::build_index(&self.nodes));
        }
        let names = self.names.get_mut().expect("index just materialized");
        assert!(
            names.insert(name.clone(), id).is_none(),
            "duplicate node name `{name}`"
        );
        self.nodes.push(Node { name, kind });
        id
    }

    /// Adds a primary input.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used.
    pub fn add_input(&mut self, name: impl Into<String>) -> NodeId {
        let id = self.push(name.into(), NodeKind::Input);
        self.inputs.push(id);
        id
    }

    /// Adds a constant driver node.
    pub fn add_constant(&mut self, name: impl Into<String>, value: bool) -> NodeId {
        self.push(name.into(), NodeKind::Constant(value))
    }

    /// Adds a combinational node.
    ///
    /// # Panics
    ///
    /// Panics if the name is already used or the fanin count does not match
    /// the table input count.
    pub fn add_logic(
        &mut self,
        name: impl Into<String>,
        fanins: Vec<NodeId>,
        table: TruthTable,
    ) -> NodeId {
        assert_eq!(
            fanins.len(),
            table.num_inputs(),
            "fanin count must match table inputs"
        );
        self.push(name.into(), NodeKind::Logic { fanins, table })
    }

    /// Adds a latch whose data input will be connected later with
    /// [`Netlist::set_latch_data`] (needed for feedback paths such as
    /// enable-registers).
    pub fn add_latch(&mut self, name: impl Into<String>, init: bool) -> NodeId {
        let id = self.push(
            name.into(),
            NodeKind::Latch {
                data: UNCONNECTED,
                init,
            },
        );
        self.latches.push(id);
        id
    }

    /// Connects (or reconnects) the data input of a latch.
    ///
    /// # Panics
    ///
    /// Panics if `latch` is not a latch node.
    pub fn set_latch_data(&mut self, latch: NodeId, data: NodeId) {
        match &mut self.nodes[latch.index()].kind {
            NodeKind::Latch { data: d, .. } => *d = data,
            _ => panic!("node {latch} is not a latch"),
        }
    }

    /// Declares `node` as a primary output under `port_name`.
    pub fn mark_output(&mut self, port_name: impl Into<String>, node: NodeId) {
        self.outputs.push((port_name.into(), node));
    }

    /// Number of nodes of any kind.
    pub fn num_nodes(&self) -> usize {
        self.nodes.len()
    }

    /// Access a node.
    pub fn node(&self, id: NodeId) -> &Node {
        &self.nodes[id.index()]
    }

    /// All nodes in id order.
    pub fn nodes(&self) -> impl Iterator<Item = (NodeId, &Node)> {
        self.nodes
            .iter()
            .enumerate()
            .map(|(i, n)| (NodeId(i as u32), n))
    }

    /// Primary inputs in declaration order.
    pub fn inputs(&self) -> &[NodeId] {
        &self.inputs
    }

    /// Primary outputs (port name, node) in declaration order.
    pub fn outputs(&self) -> &[(String, NodeId)] {
        &self.outputs
    }

    /// Latches in declaration order.
    pub fn latches(&self) -> &[NodeId] {
        &self.latches
    }

    /// Looks a node up by name.
    pub fn find(&self, name: &str) -> Option<NodeId> {
        self.names
            .get_or_init(|| Self::build_index(&self.nodes))
            .get(name)
            .copied()
    }

    /// Fanins of a node (empty for inputs/constants; the data input for a
    /// connected latch).
    pub fn fanins(&self, id: NodeId) -> &[NodeId] {
        match &self.nodes[id.index()].kind {
            NodeKind::Logic { fanins, .. } => fanins,
            NodeKind::Latch { data, .. } if *data != UNCONNECTED => std::slice::from_ref(data),
            _ => &[],
        }
    }

    /// True for nodes that act as combinational sources: inputs, constants
    /// and latch outputs.
    pub fn is_source(&self, id: NodeId) -> bool {
        !matches!(self.nodes[id.index()].kind, NodeKind::Logic { .. })
    }

    /// Validates the netlist. See [`NetlistError`] for the conditions.
    ///
    /// # Errors
    ///
    /// Returns the first structural problem found.
    pub fn check(&self) -> Result<(), NetlistError> {
        let n = self.nodes.len() as u32;
        for node in &self.nodes {
            match &node.kind {
                NodeKind::Logic { fanins, table } => {
                    if fanins.len() != table.num_inputs() {
                        return Err(NetlistError::ArityMismatch {
                            node: node.name.clone(),
                            fanins: fanins.len(),
                            table_inputs: table.num_inputs(),
                        });
                    }
                    for f in fanins {
                        if f.0 >= n {
                            return Err(NetlistError::DanglingFanin {
                                node: node.name.clone(),
                                fanin: f.0,
                            });
                        }
                    }
                }
                NodeKind::Latch { data, .. } => {
                    if *data == UNCONNECTED {
                        return Err(NetlistError::UnconnectedLatch(node.name.clone()));
                    }
                    if data.0 >= n {
                        return Err(NetlistError::DanglingFanin {
                            node: node.name.clone(),
                            fanin: data.0,
                        });
                    }
                }
                _ => {}
            }
        }
        for (name, id) in &self.outputs {
            if id.0 >= n {
                return Err(NetlistError::UnknownName(name.clone()));
            }
        }
        // Cycle check over the combinational subgraph.
        if self.topo_order_internal().is_none() {
            // Find a node on a cycle for the report: any logic node not in
            // the partial order.
            let order = self.partial_topo();
            let mut in_order = vec![false; self.nodes.len()];
            for id in order {
                in_order[id.index()] = true;
            }
            let offender = self
                .nodes()
                .find(|(id, node)| {
                    matches!(node.kind, NodeKind::Logic { .. }) && !in_order[id.index()]
                })
                .map(|(_, node)| node.name.clone())
                .unwrap_or_default();
            return Err(NetlistError::CombinationalCycle(offender));
        }
        Ok(())
    }

    fn partial_topo(&self) -> Vec<NodeId> {
        let mut indeg = vec![0usize; self.nodes.len()];
        let mut fanouts: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (id, node) in self.nodes() {
            if let NodeKind::Logic { fanins, .. } = &node.kind {
                indeg[id.index()] = fanins.len();
                for f in fanins {
                    fanouts[f.index()].push(id);
                }
            }
        }
        let mut queue: Vec<NodeId> = self
            .nodes()
            .filter(|(id, _)| self.is_source(*id))
            .map(|(id, _)| id)
            .collect();
        let mut order = Vec::with_capacity(self.nodes.len());
        while let Some(id) = queue.pop() {
            order.push(id);
            for &fo in &fanouts[id.index()] {
                indeg[fo.index()] -= 1;
                if indeg[fo.index()] == 0 {
                    queue.push(fo);
                }
            }
        }
        order
    }

    fn topo_order_internal(&self) -> Option<Vec<NodeId>> {
        let order = self.partial_topo();
        if order.len() == self.nodes.len() {
            Some(order)
        } else {
            None
        }
    }

    /// Topological order of all nodes: sources (inputs, constants, latch
    /// outputs) first, then combinational nodes respecting fanin order.
    ///
    /// # Panics
    ///
    /// Panics if the combinational subgraph is cyclic; run
    /// [`Netlist::check`] first for a graceful error.
    pub fn topo_order(&self) -> Vec<NodeId> {
        self.topo_order_internal()
            .expect("combinational cycle in netlist")
    }

    /// Fanout adjacency: for each node, the logic nodes that read it (latch
    /// data edges included).
    pub fn fanouts(&self) -> Vec<Vec<NodeId>> {
        let mut fo: Vec<Vec<NodeId>> = vec![Vec::new(); self.nodes.len()];
        for (id, node) in self.nodes() {
            match &node.kind {
                NodeKind::Logic { fanins, .. } => {
                    for f in fanins {
                        fo[f.index()].push(id);
                    }
                }
                NodeKind::Latch { data, .. } if *data != UNCONNECTED => {
                    fo[data.index()].push(id);
                }
                _ => {}
            }
        }
        fo
    }

    /// Logic level (depth) per node: sources are level 0, a logic node is
    /// `1 + max(fanin levels)`. Returns a vector indexed by node id.
    pub fn levels(&self) -> Vec<u32> {
        let mut level = vec![0u32; self.nodes.len()];
        for id in self.topo_order() {
            if let NodeKind::Logic { fanins, .. } = &self.nodes[id.index()].kind {
                level[id.index()] = 1 + fanins.iter().map(|f| level[f.index()]).max().unwrap_or(0);
            }
        }
        level
    }

    /// Maximum logic level over output and latch-data cones (the critical
    /// combinational depth of the circuit).
    pub fn depth(&self) -> u32 {
        let levels = self.levels();
        let mut d = 0;
        for (_, id) in &self.outputs {
            d = d.max(levels[id.index()]);
        }
        for &l in &self.latches {
            if let NodeKind::Latch { data, .. } = &self.nodes[l.index()].kind {
                if *data != UNCONNECTED {
                    d = d.max(levels[data.index()]);
                }
            }
        }
        d
    }

    /// Number of combinational (logic) nodes.
    pub fn num_logic(&self) -> usize {
        self.nodes
            .iter()
            .filter(|n| matches!(n.kind, NodeKind::Logic { .. }))
            .count()
    }

    /// Number of latch bits.
    pub fn num_latches(&self) -> usize {
        self.latches.len()
    }

    /// Total fanin edge count of logic nodes.
    pub fn num_edges(&self) -> usize {
        self.nodes
            .iter()
            .map(|n| match &n.kind {
                NodeKind::Logic { fanins, .. } => fanins.len(),
                _ => 0,
            })
            .sum()
    }

    /// Removes nodes not reachable (backwards) from any primary output or
    /// latch data input. Returns the number of removed nodes. Ids are
    /// remapped; the relative order of surviving nodes is preserved.
    pub fn sweep(&mut self) -> usize {
        let mut live = vec![false; self.nodes.len()];
        let mut stack: Vec<NodeId> = Vec::new();
        for (_, id) in &self.outputs {
            stack.push(*id);
        }
        for &l in &self.latches {
            stack.push(l);
        }
        // Keep all primary inputs: dropping ports would change the interface.
        for &i in &self.inputs {
            stack.push(i);
        }
        while let Some(id) = stack.pop() {
            if live[id.index()] {
                continue;
            }
            live[id.index()] = true;
            match &self.nodes[id.index()].kind {
                NodeKind::Logic { fanins, .. } => stack.extend(fanins.iter().copied()),
                NodeKind::Latch { data, .. } if *data != UNCONNECTED => stack.push(*data),
                _ => {}
            }
        }
        let removed = live.iter().filter(|l| !**l).count();
        if removed == 0 {
            return 0;
        }
        let mut remap = vec![UNCONNECTED; self.nodes.len()];
        let mut new_nodes = Vec::with_capacity(self.nodes.len() - removed);
        for (i, node) in self.nodes.drain(..).enumerate() {
            if live[i] {
                remap[i] = NodeId(new_nodes.len() as u32);
                new_nodes.push(node);
            }
        }
        for node in &mut new_nodes {
            match &mut node.kind {
                NodeKind::Logic { fanins, .. } => {
                    for f in fanins {
                        *f = remap[f.index()];
                    }
                }
                NodeKind::Latch { data, .. } if *data != UNCONNECTED => {
                    *data = remap[data.index()];
                }
                _ => {}
            }
        }
        self.nodes = new_nodes;
        self.inputs = self.inputs.iter().map(|i| remap[i.index()]).collect();
        self.latches = self.latches.iter().map(|l| remap[l.index()]).collect();
        for (_, id) in &mut self.outputs {
            *id = remap[id.index()];
        }
        // Ids moved: drop the index and let the next `find` rebuild it.
        self.names = OnceLock::new();
        removed
    }

    /// Summary statistics for reports and tests.
    pub fn stats(&self) -> NetlistStats {
        NetlistStats {
            inputs: self.inputs.len(),
            outputs: self.outputs.len(),
            latches: self.latches.len(),
            logic: self.num_logic(),
            edges: self.num_edges(),
            depth: self.depth(),
        }
    }
}

/// Summary counts returned by [`Netlist::stats`].
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NetlistStats {
    /// Primary input count.
    pub inputs: usize,
    /// Primary output count.
    pub outputs: usize,
    /// Latch bit count.
    pub latches: usize,
    /// Combinational node count.
    pub logic: usize,
    /// Total fanin edges of logic nodes.
    pub edges: usize,
    /// Critical combinational depth in logic levels.
    pub depth: u32,
}

impl fmt::Display for NetlistStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "pi={} po={} latch={} logic={} edges={} depth={}",
            self.inputs, self.outputs, self.latches, self.logic, self.edges, self.depth
        )
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn xor_chain(n: usize) -> Netlist {
        let mut nl = Netlist::new("chain");
        let mut prev = nl.add_input("i0");
        for k in 1..=n {
            let i = nl.add_input(format!("i{k}"));
            prev = nl.add_logic(format!("x{k}"), vec![prev, i], TruthTable::xor(2));
        }
        nl.mark_output("out", prev);
        nl
    }

    #[test]
    fn build_and_check() {
        let nl = xor_chain(5);
        nl.check().unwrap();
        assert_eq!(nl.num_logic(), 5);
        assert_eq!(nl.depth(), 5);
        assert_eq!(nl.stats().edges, 10);
    }

    #[test]
    fn topo_order_respects_fanins() {
        let nl = xor_chain(8);
        let order = nl.topo_order();
        let mut pos = vec![0usize; nl.num_nodes()];
        for (i, id) in order.iter().enumerate() {
            pos[id.index()] = i;
        }
        for (id, _) in nl.nodes() {
            for f in nl.fanins(id) {
                assert!(pos[f.index()] < pos[id.index()]);
            }
        }
    }

    #[test]
    fn latch_feedback_is_legal() {
        // q' = q XOR en  (toggle register) — feedback through the latch.
        let mut nl = Netlist::new("toggle");
        let en = nl.add_input("en");
        let q = nl.add_latch("q", false);
        let d = nl.add_logic("d", vec![q, en], TruthTable::xor(2));
        nl.set_latch_data(q, d);
        nl.mark_output("out", q);
        nl.check().unwrap();
        assert_eq!(nl.depth(), 1);
    }

    #[test]
    fn combinational_cycle_detected() {
        let mut nl = Netlist::new("cyc");
        let a = nl.add_input("a");
        // g1 depends on g2 which depends on g1: patch fanin by hand.
        let g1 = nl.add_logic("g1", vec![a, a], TruthTable::and(2));
        let g2 = nl.add_logic("g2", vec![g1, a], TruthTable::and(2));
        if let NodeKind::Logic { fanins, .. } = &mut nl.nodes[g1.index()].kind {
            fanins[1] = g2;
        }
        assert!(matches!(
            nl.check(),
            Err(NetlistError::CombinationalCycle(_))
        ));
    }

    #[test]
    fn unconnected_latch_detected() {
        let mut nl = Netlist::new("bad");
        nl.add_latch("q", false);
        assert!(matches!(nl.check(), Err(NetlistError::UnconnectedLatch(_))));
    }

    #[test]
    fn sweep_removes_dead_logic() {
        let mut nl = Netlist::new("dead");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let live = nl.add_logic("live", vec![a, b], TruthTable::and(2));
        let _dead = nl.add_logic("dead", vec![a, b], TruthTable::or(2));
        nl.mark_output("o", live);
        let removed = nl.sweep();
        assert_eq!(removed, 1);
        assert_eq!(nl.num_logic(), 1);
        assert!(nl.find("dead").is_none());
        assert!(nl.find("live").is_some());
        nl.check().unwrap();
        // outputs remapped correctly
        let (_, o) = &nl.outputs()[0];
        assert_eq!(nl.node(*o).name, "live");
    }

    #[test]
    fn sweep_keeps_latch_cones() {
        let mut nl = Netlist::new("seq");
        let a = nl.add_input("a");
        let q = nl.add_latch("q", false);
        let d = nl.add_logic("d", vec![a, q], TruthTable::xor(2));
        nl.set_latch_data(q, d);
        // no primary outputs at all
        assert_eq!(nl.sweep(), 0);
        nl.check().unwrap();
    }

    #[test]
    fn find_by_name() {
        let nl = xor_chain(2);
        assert_eq!(nl.find("x1"), Some(NodeId(2)));
        assert!(nl.find("nope").is_none());
    }

    #[test]
    fn levels_and_depth() {
        let mut nl = Netlist::new("lv");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g1 = nl.add_logic("g1", vec![a, b], TruthTable::and(2));
        let g2 = nl.add_logic("g2", vec![g1, b], TruthTable::or(2));
        nl.mark_output("o", g2);
        let lv = nl.levels();
        assert_eq!(lv[a.index()], 0);
        assert_eq!(lv[g1.index()], 1);
        assert_eq!(lv[g2.index()], 2);
        assert_eq!(nl.depth(), 2);
    }
}
