//! BLIF (Berkeley Logic Interchange Format) reading and writing.
//!
//! Supports the subset used by the paper's flow (SIS \[19\]): `.model`,
//! `.inputs`, `.outputs`, `.names` (SOP covers), `.latch`, `.subckt`,
//! `.search`, `.end`. Multi-model files are parsed into a [`BlifFile`];
//! [`BlifFile::flatten`] links `.subckt` instances into a single
//! [`Netlist`], which is how the paper's partial-datapath netlists
//! (Figure 2) are assembled from the mux/FU component models.

use crate::graph::{Netlist, NodeId, NodeKind};
use crate::truth::TruthTable;
use std::collections::HashMap;
use std::fmt;

/// Errors produced by the BLIF parser and linker.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum BlifError {
    /// Malformed directive or cover line, with 1-based line number.
    Syntax {
        /// 1-based source line.
        line: usize,
        /// Human-readable description.
        message: String,
    },
    /// `.subckt` referenced a model that is not in the file or the extra
    /// library.
    UnknownModel(String),
    /// A net was used but never defined.
    UndefinedNet {
        /// Model in which the reference occurred.
        model: String,
        /// The missing net.
        net: String,
    },
    /// A net was defined more than once in the same model.
    Redefined {
        /// Model in which the clash occurred.
        model: String,
        /// The redefined net.
        net: String,
    },
    /// The cover rows of a `.names` block disagree on the output value.
    MixedCover {
        /// Model containing the cover.
        model: String,
        /// Output net of the cover.
        net: String,
    },
    /// Combinational loop discovered while linking.
    CombinationalLoop {
        /// A net on the loop.
        net: String,
    },
    /// A `.subckt` pin did not match any port of the referenced model.
    BadPin {
        /// The referenced model.
        model: String,
        /// The unmatched formal pin.
        pin: String,
    },
    /// Truth table would exceed the supported input count.
    TooManyInputs {
        /// Output net of the too-wide cover.
        net: String,
        /// Its input count.
        inputs: usize,
    },
}

impl fmt::Display for BlifError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            BlifError::Syntax { line, message } => write!(f, "line {line}: {message}"),
            BlifError::UnknownModel(m) => write!(f, "unknown model `{m}`"),
            BlifError::UndefinedNet { model, net } => {
                write!(f, "model `{model}`: undefined net `{net}`")
            }
            BlifError::Redefined { model, net } => {
                write!(f, "model `{model}`: net `{net}` redefined")
            }
            BlifError::MixedCover { model, net } => {
                write!(f, "model `{model}`: cover of `{net}` mixes output values")
            }
            BlifError::CombinationalLoop { net } => {
                write!(f, "combinational loop through net `{net}`")
            }
            BlifError::BadPin { model, pin } => {
                write!(f, "subckt of `{model}`: pin `{pin}` matches no port")
            }
            BlifError::TooManyInputs { net, inputs } => {
                write!(f, "net `{net}` has {inputs} inputs (max 16)")
            }
        }
    }
}

impl std::error::Error for BlifError {}

/// One `.names` block: a sum-of-products cover.
#[derive(Debug, Clone)]
pub struct Cover {
    /// Input net names (may be empty for constants).
    pub inputs: Vec<String>,
    /// Output net name.
    pub output: String,
    /// Cube rows: one pattern string (`0`/`1`/`-` per input) per row.
    pub cubes: Vec<String>,
    /// Output phase: `true` if rows list the on-set, `false` for off-set.
    pub on_set: bool,
}

impl Cover {
    /// Converts the cover into a truth table over its inputs.
    ///
    /// # Errors
    ///
    /// Returns [`BlifError::TooManyInputs`] when the cover is too wide.
    pub fn to_table(&self) -> Result<TruthTable, BlifError> {
        let n = self.inputs.len();
        if n > crate::truth::MAX_INPUTS {
            return Err(BlifError::TooManyInputs {
                net: self.output.clone(),
                inputs: n,
            });
        }
        let cubes: Vec<(u32, u32)> = self
            .cubes
            .iter()
            .map(|p| {
                let mut care = 0u32;
                let mut val = 0u32;
                for (i, ch) in p.chars().enumerate() {
                    match ch {
                        '0' => care |= 1 << i,
                        '1' => {
                            care |= 1 << i;
                            val |= 1 << i;
                        }
                        _ => {}
                    }
                }
                (care, val)
            })
            .collect();
        let covered = move |row: u32| cubes.iter().any(|&(care, val)| row & care == val);
        Ok(if self.on_set {
            TruthTable::from_fn(n, covered)
        } else {
            TruthTable::from_fn(n, |r| !covered(r))
        })
    }
}

/// One `.latch` statement.
#[derive(Debug, Clone)]
pub struct BlifLatch {
    /// Data (D) net name.
    pub input: String,
    /// Output (Q) net name.
    pub output: String,
    /// Power-up value (`0`/`1`; `2`/`3` in files map to `false`).
    pub init: bool,
}

/// One `.subckt` instantiation.
#[derive(Debug, Clone)]
pub struct SubcktRef {
    /// Referenced model name.
    pub model: String,
    /// `formal -> actual` pin bindings.
    pub bindings: Vec<(String, String)>,
}

/// A parsed `.model` section.
#[derive(Debug, Clone)]
pub struct BlifModel {
    /// Model name.
    pub name: String,
    /// Primary input nets.
    pub inputs: Vec<String>,
    /// Primary output nets.
    pub outputs: Vec<String>,
    /// `.names` covers.
    pub covers: Vec<Cover>,
    /// `.latch` statements.
    pub latches: Vec<BlifLatch>,
    /// `.subckt` instances.
    pub subckts: Vec<SubcktRef>,
}

/// A parsed BLIF file: one or more models plus any `.search` directives.
#[derive(Debug, Clone)]
pub struct BlifFile {
    /// Models in file order; the first is conventionally the top.
    pub models: Vec<BlifModel>,
    /// Files referenced by `.search` (resolution is up to the caller).
    pub searches: Vec<String>,
}

/// Parses BLIF text into models.
///
/// # Errors
///
/// Returns [`BlifError::Syntax`] on malformed input.
///
/// # Examples
///
/// ```
/// let file = netlist::parse_blif(".model t\n.inputs a b\n.outputs o\n.names a b o\n11 1\n.end\n")?;
/// assert_eq!(file.models[0].name, "t");
/// # Ok::<(), netlist::BlifError>(())
/// ```
pub fn parse_blif(text: &str) -> Result<BlifFile, BlifError> {
    // Join continuation lines, strip comments, remember line numbers.
    let mut lines: Vec<(usize, String)> = Vec::new();
    let mut pending: Option<(usize, String)> = None;
    for (idx, raw) in text.lines().enumerate() {
        let no_comment = match raw.find('#') {
            Some(p) => &raw[..p],
            None => raw,
        };
        let mut s = no_comment.trim_end().to_string();
        let continues = s.ends_with('\\');
        if continues {
            s.pop();
        }
        match pending.take() {
            Some((ln, mut acc)) => {
                acc.push(' ');
                acc.push_str(s.trim());
                if continues {
                    pending = Some((ln, acc));
                } else {
                    lines.push((ln, acc));
                }
            }
            None => {
                if continues {
                    pending = Some((idx + 1, s));
                } else if !s.trim().is_empty() {
                    lines.push((idx + 1, s));
                }
            }
        }
    }
    if let Some((ln, s)) = pending {
        lines.push((ln, s));
    }

    let mut file = BlifFile {
        models: Vec::new(),
        searches: Vec::new(),
    };
    let mut current: Option<BlifModel> = None;
    let mut open_cover: Option<Cover> = None;

    let close_cover = |model: &mut BlifModel, open: &mut Option<Cover>| {
        if let Some(c) = open.take() {
            model.covers.push(c);
        }
    };

    for (ln, line) in lines {
        let trimmed = line.trim();
        let mut toks = trimmed.split_whitespace();
        let first = toks.next().unwrap_or("");
        if let Some(directive) = first.strip_prefix('.') {
            let rest: Vec<&str> = toks.collect();
            match directive {
                "model" => {
                    if let Some(mut m) = current.take() {
                        close_cover(&mut m, &mut open_cover);
                        file.models.push(m);
                    }
                    current = Some(BlifModel {
                        name: rest.first().unwrap_or(&"top").to_string(),
                        inputs: Vec::new(),
                        outputs: Vec::new(),
                        covers: Vec::new(),
                        latches: Vec::new(),
                        subckts: Vec::new(),
                    });
                }
                "inputs" => {
                    let m = current.as_mut().ok_or(BlifError::Syntax {
                        line: ln,
                        message: ".inputs outside .model".into(),
                    })?;
                    close_cover(m, &mut open_cover);
                    m.inputs.extend(rest.iter().map(|s| s.to_string()));
                }
                "outputs" => {
                    let m = current.as_mut().ok_or(BlifError::Syntax {
                        line: ln,
                        message: ".outputs outside .model".into(),
                    })?;
                    close_cover(m, &mut open_cover);
                    m.outputs.extend(rest.iter().map(|s| s.to_string()));
                }
                "names" => {
                    let m = current.as_mut().ok_or(BlifError::Syntax {
                        line: ln,
                        message: ".names outside .model".into(),
                    })?;
                    close_cover(m, &mut open_cover);
                    if rest.is_empty() {
                        return Err(BlifError::Syntax {
                            line: ln,
                            message: ".names needs at least an output".into(),
                        });
                    }
                    let output = rest[rest.len() - 1].to_string();
                    let inputs = rest[..rest.len() - 1]
                        .iter()
                        .map(|s| s.to_string())
                        .collect();
                    open_cover = Some(Cover {
                        inputs,
                        output,
                        cubes: Vec::new(),
                        on_set: true,
                    });
                }
                "latch" => {
                    let m = current.as_mut().ok_or(BlifError::Syntax {
                        line: ln,
                        message: ".latch outside .model".into(),
                    })?;
                    close_cover(m, &mut open_cover);
                    if rest.len() < 2 {
                        return Err(BlifError::Syntax {
                            line: ln,
                            message: ".latch needs input and output".into(),
                        });
                    }
                    let init = matches!(rest.last(), Some(&"1"));
                    m.latches.push(BlifLatch {
                        input: rest[0].to_string(),
                        output: rest[1].to_string(),
                        init,
                    });
                }
                "subckt" => {
                    let m = current.as_mut().ok_or(BlifError::Syntax {
                        line: ln,
                        message: ".subckt outside .model".into(),
                    })?;
                    close_cover(m, &mut open_cover);
                    if rest.is_empty() {
                        return Err(BlifError::Syntax {
                            line: ln,
                            message: ".subckt needs a model name".into(),
                        });
                    }
                    let mut bindings = Vec::new();
                    for pin in &rest[1..] {
                        let (f, a) = pin.split_once('=').ok_or(BlifError::Syntax {
                            line: ln,
                            message: format!("bad pin binding `{pin}`"),
                        })?;
                        bindings.push((f.to_string(), a.to_string()));
                    }
                    m.subckts.push(SubcktRef {
                        model: rest[0].to_string(),
                        bindings,
                    });
                }
                "search" => {
                    file.searches.extend(rest.iter().map(|s| s.to_string()));
                }
                "end" => {
                    if let Some(mut m) = current.take() {
                        close_cover(&mut m, &mut open_cover);
                        file.models.push(m);
                    }
                }
                // Directives we accept and ignore (clocks, delays, etc.)
                _ => {}
            }
        } else if let Some(cover) = open_cover.as_mut() {
            // A cover row: `<pattern> <value>` or bare `<value>` for
            // constant outputs.
            let toks: Vec<&str> = trimmed.split_whitespace().collect();
            let (pattern, value) = match toks.len() {
                1 => ("", toks[0]),
                2 => (toks[0], toks[1]),
                _ => {
                    return Err(BlifError::Syntax {
                        line: ln,
                        message: format!("bad cover row `{trimmed}`"),
                    })
                }
            };
            if pattern.len() != cover.inputs.len() {
                return Err(BlifError::Syntax {
                    line: ln,
                    message: format!(
                        "cover row width {} does not match {} inputs",
                        pattern.len(),
                        cover.inputs.len()
                    ),
                });
            }
            let on = match value {
                "1" => true,
                "0" => false,
                _ => {
                    return Err(BlifError::Syntax {
                        line: ln,
                        message: format!("bad cover value `{value}`"),
                    })
                }
            };
            if cover.cubes.is_empty() {
                cover.on_set = on;
            } else if cover.on_set != on {
                return Err(BlifError::MixedCover {
                    model: String::new(),
                    net: cover.output.clone(),
                });
            }
            cover.cubes.push(pattern.to_string());
        } else {
            return Err(BlifError::Syntax {
                line: ln,
                message: format!("unexpected line `{trimmed}`"),
            });
        }
    }
    if let Some(mut m) = current.take() {
        close_cover(&mut m, &mut open_cover);
        file.models.push(m);
    }
    Ok(file)
}

/// How a net is produced, gathered during flattening.
enum NetDef {
    Input,
    Cover {
        fanins: Vec<String>,
        table: TruthTable,
    },
    LatchOut {
        data: String,
        init: bool,
    },
}

impl BlifFile {
    /// Finds a model by name.
    pub fn model(&self, name: &str) -> Option<&BlifModel> {
        self.models.iter().find(|m| m.name == name)
    }

    /// Flattens `top` (or the first model when `None`) into a [`Netlist`],
    /// recursively instantiating `.subckt`s. `extra` supplies additional
    /// component models (the resolution of `.search` directives).
    ///
    /// # Errors
    ///
    /// Reports unknown models, undefined or redefined nets, bad pins, and
    /// combinational loops.
    pub fn flatten(&self, top: Option<&str>, extra: &[BlifModel]) -> Result<Netlist, BlifError> {
        let top_model = match top {
            Some(name) => self
                .model(name)
                .or_else(|| extra.iter().find(|m| m.name == name))
                .ok_or_else(|| BlifError::UnknownModel(name.to_string()))?,
            None => self
                .models
                .first()
                .ok_or_else(|| BlifError::UnknownModel("<empty file>".to_string()))?,
        };
        let lookup = |name: &str| -> Option<&BlifModel> {
            self.models
                .iter()
                .find(|m| m.name == name)
                .or_else(|| extra.iter().find(|m| m.name == name))
        };

        let mut defs: HashMap<String, NetDef> = HashMap::new();
        let mut instance_counter = 0usize;
        collect_model(top_model, "", &lookup, &mut defs, &mut instance_counter)?;
        for input in &top_model.inputs {
            if defs.insert(input.clone(), NetDef::Input).is_some() {
                return Err(BlifError::Redefined {
                    model: top_model.name.clone(),
                    net: input.clone(),
                });
            }
        }

        let mut nl = Netlist::new(top_model.name.clone());
        let mut ids: HashMap<String, NodeId> = HashMap::new();
        // Inputs in declaration order, then latches, then logic by demand.
        for input in &top_model.inputs {
            ids.insert(input.clone(), nl.add_input(input.clone()));
        }
        // Deterministic creation order regardless of hash-map iteration.
        let mut sorted_nets: Vec<&String> = defs.keys().collect();
        sorted_nets.sort();
        let mut latch_connections: Vec<(NodeId, String)> = Vec::new();
        for net in &sorted_nets {
            if let Some(NetDef::LatchOut { data, init }) = defs.get(*net) {
                let id = nl.add_latch((*net).clone(), *init);
                ids.insert((*net).clone(), id);
                latch_connections.push((id, data.clone()));
            }
        }
        // Iterative DFS to create logic nodes in dependency order.
        let mut visiting: HashMap<String, bool> = HashMap::new();
        for net in &sorted_nets {
            build_net(net, &defs, &mut nl, &mut ids, &mut visiting)?;
        }
        for (latch, data_net) in latch_connections {
            let data = *ids.get(&data_net).ok_or_else(|| BlifError::UndefinedNet {
                model: top_model.name.clone(),
                net: data_net.clone(),
            })?;
            nl.set_latch_data(latch, data);
        }
        for output in &top_model.outputs {
            let id = *ids.get(output).ok_or_else(|| BlifError::UndefinedNet {
                model: top_model.name.clone(),
                net: output.clone(),
            })?;
            nl.mark_output(output.clone(), id);
        }
        Ok(nl)
    }
}

fn collect_model<'a>(
    model: &'a BlifModel,
    prefix: &str,
    lookup: &dyn Fn(&str) -> Option<&'a BlifModel>,
    defs: &mut HashMap<String, NetDef>,
    instance_counter: &mut usize,
) -> Result<(), BlifError> {
    let qualify = |net: &str| -> String {
        if prefix.is_empty() {
            net.to_string()
        } else {
            format!("{prefix}{net}")
        }
    };
    for cover in &model.covers {
        let table = cover.to_table()?;
        let out = qualify(&cover.output);
        let fanins = cover.inputs.iter().map(|i| qualify(i)).collect();
        if defs
            .insert(out.clone(), NetDef::Cover { fanins, table })
            .is_some()
        {
            return Err(BlifError::Redefined {
                model: model.name.clone(),
                net: out,
            });
        }
    }
    for latch in &model.latches {
        let out = qualify(&latch.output);
        if defs
            .insert(
                out.clone(),
                NetDef::LatchOut {
                    data: qualify(&latch.input),
                    init: latch.init,
                },
            )
            .is_some()
        {
            return Err(BlifError::Redefined {
                model: model.name.clone(),
                net: out,
            });
        }
    }
    for sub in &model.subckts {
        let child = lookup(&sub.model).ok_or_else(|| BlifError::UnknownModel(sub.model.clone()))?;
        *instance_counter += 1;
        let child_prefix = format!("{prefix}u{instance_counter}.");
        // Formal->actual bindings become buffer covers on the boundary:
        // child inputs read the actual nets; child outputs drive them.
        let mut bound: HashMap<&str, &str> = HashMap::new();
        for (formal, actual) in &sub.bindings {
            let is_port = child.inputs.iter().any(|i| i == formal)
                || child.outputs.iter().any(|o| o == formal);
            if !is_port {
                return Err(BlifError::BadPin {
                    model: sub.model.clone(),
                    pin: formal.clone(),
                });
            }
            bound.insert(formal.as_str(), actual.as_str());
        }
        collect_model(child, &child_prefix, lookup, defs, instance_counter)?;
        for input in &child.inputs {
            if let Some(actual) = bound.get(input.as_str()) {
                let inner = format!("{child_prefix}{input}");
                defs.insert(
                    inner,
                    NetDef::Cover {
                        fanins: vec![qualify(actual)],
                        table: TruthTable::buffer(),
                    },
                );
            }
        }
        for output in &child.outputs {
            if let Some(actual) = bound.get(output.as_str()) {
                let inner = format!("{child_prefix}{output}");
                let out_net = qualify(actual);
                if defs
                    .insert(
                        out_net.clone(),
                        NetDef::Cover {
                            fanins: vec![inner],
                            table: TruthTable::buffer(),
                        },
                    )
                    .is_some()
                {
                    return Err(BlifError::Redefined {
                        model: model.name.clone(),
                        net: out_net,
                    });
                }
            }
        }
    }
    Ok(())
}

fn build_net(
    net: &str,
    defs: &HashMap<String, NetDef>,
    nl: &mut Netlist,
    ids: &mut HashMap<String, NodeId>,
    visiting: &mut HashMap<String, bool>,
) -> Result<NodeId, BlifError> {
    if let Some(&id) = ids.get(net) {
        return Ok(id);
    }
    // Iterative DFS with an explicit stack to avoid deep recursion.
    let mut stack: Vec<(String, usize)> = vec![(net.to_string(), 0)];
    while let Some((cur, child_idx)) = stack.pop() {
        if ids.contains_key(&cur) {
            continue;
        }
        let def = defs.get(&cur).ok_or_else(|| BlifError::UndefinedNet {
            model: nl.name().to_string(),
            net: cur.clone(),
        })?;
        match def {
            NetDef::Input | NetDef::LatchOut { .. } => {
                // Inputs/latches were pre-created; reaching here means the
                // net is genuinely missing.
                return Err(BlifError::UndefinedNet {
                    model: nl.name().to_string(),
                    net: cur.clone(),
                });
            }
            NetDef::Cover { fanins, table } => {
                if child_idx == 0 && visiting.insert(cur.clone(), true) == Some(true) {
                    return Err(BlifError::CombinationalLoop { net: cur });
                }
                if let Some(next) = fanins.get(child_idx) {
                    stack.push((cur.clone(), child_idx + 1));
                    if !ids.contains_key(next) {
                        match defs.get(next) {
                            Some(NetDef::Cover { .. }) => {
                                if visiting.get(next) == Some(&true) {
                                    return Err(BlifError::CombinationalLoop { net: next.clone() });
                                }
                                stack.push((next.clone(), 0));
                            }
                            Some(_) => {}
                            None => {
                                return Err(BlifError::UndefinedNet {
                                    model: nl.name().to_string(),
                                    net: next.clone(),
                                })
                            }
                        }
                    }
                } else {
                    let fanin_ids: Result<Vec<NodeId>, BlifError> = fanins
                        .iter()
                        .map(|f| {
                            ids.get(f).copied().ok_or_else(|| BlifError::UndefinedNet {
                                model: nl.name().to_string(),
                                net: f.clone(),
                            })
                        })
                        .collect();
                    let id = nl.add_logic(cur.clone(), fanin_ids?, table.clone());
                    ids.insert(cur.clone(), id);
                    visiting.insert(cur.clone(), false);
                }
            }
        }
    }
    Ok(*ids.get(net).expect("net built"))
}

/// Serializes a netlist as single-model BLIF.
///
/// Logic nodes are written as minterm covers; constants become `.names`
/// blocks with an empty (constant-0) or universal (constant-1) cover.
///
/// # Examples
///
/// ```
/// use netlist::{Netlist, TruthTable, write_blif};
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_logic("g", vec![a], TruthTable::inverter());
/// nl.mark_output("o", g);
/// let text = write_blif(&nl);
/// assert!(text.contains(".model t"));
/// ```
pub fn write_blif(nl: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(&format!(".model {}\n", nl.name()));
    out.push_str(".inputs");
    for &i in nl.inputs() {
        out.push(' ');
        out.push_str(&nl.node(i).name);
    }
    out.push('\n');
    out.push_str(".outputs");
    for (port, _) in nl.outputs() {
        out.push(' ');
        out.push_str(port);
    }
    out.push('\n');
    for &l in nl.latches() {
        if let NodeKind::Latch { data, init } = &nl.node(l).kind {
            out.push_str(&format!(
                ".latch {} {} re clk {}\n",
                nl.node(*data).name,
                nl.node(l).name,
                if *init { 1 } else { 0 }
            ));
        }
    }
    for (_, node) in nl.nodes() {
        match &node.kind {
            NodeKind::Constant(v) => {
                out.push_str(&format!(".names {}\n", node.name));
                if *v {
                    out.push_str("1\n");
                }
            }
            NodeKind::Logic { fanins, table } => {
                out.push_str(".names");
                for f in fanins {
                    out.push(' ');
                    out.push_str(&nl.node(*f).name);
                }
                out.push(' ');
                out.push_str(&node.name);
                out.push('\n');
                let n = table.num_inputs();
                for row in 0..table.num_rows() {
                    if table.eval(row) {
                        let mut pat = String::with_capacity(n + 2);
                        for i in 0..n {
                            pat.push(if row & (1 << i) != 0 { '1' } else { '0' });
                        }
                        if n > 0 {
                            pat.push(' ');
                        }
                        pat.push('1');
                        pat.push('\n');
                        out.push_str(&pat);
                    }
                }
            }
            _ => {}
        }
    }
    // Output ports that rename an internal net need buffer covers.
    for (port, id) in nl.outputs() {
        if &nl.node(*id).name != port {
            out.push_str(&format!(".names {} {}\n1 1\n", nl.node(*id).name, port));
        }
    }
    out.push_str(".end\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_simple_model() {
        let text = "\
# comment
.model add1
.inputs a b
.outputs s c
.names a b s
01 1
10 1
.names a b c
11 1
.end
";
        let file = parse_blif(text).unwrap();
        assert_eq!(file.models.len(), 1);
        let m = &file.models[0];
        assert_eq!(m.name, "add1");
        assert_eq!(m.inputs, vec!["a", "b"]);
        assert_eq!(m.covers.len(), 2);
        let nl = file.flatten(None, &[]).unwrap();
        nl.check().unwrap();
        assert_eq!(nl.num_logic(), 2);
        let s = nl.find("s").unwrap();
        if let NodeKind::Logic { table, .. } = &nl.node(s).kind {
            assert_eq!(*table, TruthTable::xor(2));
        } else {
            panic!("s should be logic");
        }
    }

    #[test]
    fn parse_offset_cover() {
        let text = ".model t\n.inputs a b\n.outputs o\n.names a b o\n11 0\n.end\n";
        let nl = parse_blif(text).unwrap().flatten(None, &[]).unwrap();
        let o = nl.find("o").unwrap();
        if let NodeKind::Logic { table, .. } = &nl.node(o).kind {
            assert_eq!(*table, TruthTable::nand(2));
        } else {
            panic!();
        }
    }

    #[test]
    fn parse_constants() {
        let text = ".model t\n.inputs a\n.outputs one zero\n.names one\n1\n.names zero\n.end\n";
        let nl = parse_blif(text).unwrap().flatten(None, &[]).unwrap();
        let one = nl.find("one").unwrap();
        if let NodeKind::Logic { table, .. } = &nl.node(one).kind {
            assert_eq!(table.as_constant(), Some(true));
        } else {
            panic!();
        }
        let zero = nl.find("zero").unwrap();
        if let NodeKind::Logic { table, .. } = &nl.node(zero).kind {
            assert_eq!(table.as_constant(), Some(false));
        } else {
            panic!();
        }
    }

    #[test]
    fn parse_latch() {
        let text = ".model seq\n.inputs d\n.outputs q\n.latch dn q re clk 1\n.names d q dn\n10 1\n01 1\n.end\n";
        let nl = parse_blif(text).unwrap().flatten(None, &[]).unwrap();
        nl.check().unwrap();
        assert_eq!(nl.num_latches(), 1);
        let q = nl.find("q").unwrap();
        match &nl.node(q).kind {
            NodeKind::Latch { init, .. } => assert!(*init),
            _ => panic!("q should be a latch"),
        }
    }

    #[test]
    fn subckt_flattening() {
        let text = "\
.model top
.inputs x y z
.outputs o
.subckt pair a=x b=y o=t1
.subckt pair a=t1 b=z o=o
.end
.model pair
.inputs a b
.outputs o
.names a b o
11 1
.end
";
        let file = parse_blif(text).unwrap();
        let nl = file.flatten(Some("top"), &[]).unwrap();
        nl.check().unwrap();
        // two AND instances plus boundary buffers
        assert!(nl.num_logic() >= 2);
        assert_eq!(nl.inputs().len(), 3);
        assert_eq!(nl.outputs().len(), 1);
    }

    #[test]
    fn subckt_unknown_model() {
        let text = ".model top\n.inputs a\n.outputs o\n.subckt nope x=a y=o\n.end\n";
        let err = parse_blif(text).unwrap().flatten(None, &[]).unwrap_err();
        assert!(matches!(err, BlifError::UnknownModel(_)));
    }

    #[test]
    fn undefined_net_reported() {
        let text = ".model t\n.inputs a\n.outputs o\n.names a missing o\n11 1\n.end\n";
        let err = parse_blif(text).unwrap().flatten(None, &[]).unwrap_err();
        assert!(matches!(err, BlifError::UndefinedNet { .. }));
    }

    #[test]
    fn roundtrip_through_writer() {
        let mut nl = Netlist::new("rt");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g1 = nl.add_logic("g1", vec![a, b, c], TruthTable::maj3());
        let g2 = nl.add_logic("g2", vec![g1, c], TruthTable::xor(2));
        nl.mark_output("o", g2);
        let text = write_blif(&nl);
        let back = parse_blif(&text).unwrap().flatten(None, &[]).unwrap();
        back.check().unwrap();
        assert_eq!(back.inputs().len(), 2 + 1);
        let g1b = back.find("g1").unwrap();
        if let NodeKind::Logic { table, .. } = &back.node(g1b).kind {
            assert_eq!(*table, TruthTable::maj3());
        } else {
            panic!();
        }
    }

    #[test]
    fn roundtrip_latches() {
        let mut nl = Netlist::new("seq");
        let en = nl.add_input("en");
        let q = nl.add_latch("q", true);
        let d = nl.add_logic("d", vec![q, en], TruthTable::xor(2));
        nl.set_latch_data(q, d);
        nl.mark_output("o", q);
        let text = write_blif(&nl);
        let back = parse_blif(&text).unwrap().flatten(None, &[]).unwrap();
        back.check().unwrap();
        assert_eq!(back.num_latches(), 1);
    }

    #[test]
    fn search_directive_recorded() {
        let text = ".search mux2.blif\n.search mult.blif\n.model m\n.inputs a\n.outputs o\n.names a o\n1 1\n.end\n";
        let file = parse_blif(text).unwrap();
        assert_eq!(file.searches, vec!["mux2.blif", "mult.blif"]);
    }

    #[test]
    fn continuation_lines() {
        let text = ".model t\n.inputs a b \\\nc d\n.outputs o\n.names a b c d o\n1111 1\n.end\n";
        let file = parse_blif(text).unwrap();
        assert_eq!(file.models[0].inputs.len(), 4);
    }

    #[test]
    fn mixed_cover_rejected() {
        let text = ".model t\n.inputs a b\n.outputs o\n.names a b o\n11 1\n00 0\n.end\n";
        assert!(matches!(
            parse_blif(text),
            Err(BlifError::MixedCover { .. })
        ));
    }

    #[test]
    fn combinational_loop_rejected() {
        let text = ".model t\n.inputs a\n.outputs o\n.names a p o\n11 1\n.names o p\n1 1\n.end\n";
        let err = parse_blif(text).unwrap().flatten(None, &[]).unwrap_err();
        assert!(matches!(err, BlifError::CombinationalLoop { .. }));
    }
}
