//! Word-level RTL cell generators.
//!
//! These helpers elaborate the resource-library components of the paper
//! (multiplexers, adder/subtractors, array multipliers, registers) into
//! gate-level nodes of a [`Netlist`]. All gates emitted have at most three
//! fanins, so K>=4 technology mapping never has to decompose nodes.
//!
//! A word (bus) is a little-endian `Vec<NodeId>` — index 0 is the LSB.

use crate::graph::{Netlist, NodeId};
use crate::truth::TruthTable;

/// A little-endian multi-bit signal.
pub type Bus = Vec<NodeId>;

fn fresh(nl: &Netlist, prefix: &str, tag: &str) -> String {
    format!("{prefix}_{tag}{}", nl.num_nodes())
}

/// Adds an inverter node.
pub fn not_gate(nl: &mut Netlist, prefix: &str, a: NodeId) -> NodeId {
    let name = fresh(nl, prefix, "inv");
    nl.add_logic(name, vec![a], TruthTable::inverter())
}

/// Adds a 2-input AND node.
pub fn and2(nl: &mut Netlist, prefix: &str, a: NodeId, b: NodeId) -> NodeId {
    let name = fresh(nl, prefix, "and");
    nl.add_logic(name, vec![a, b], TruthTable::and(2))
}

/// Adds a 2-input OR node.
pub fn or2(nl: &mut Netlist, prefix: &str, a: NodeId, b: NodeId) -> NodeId {
    let name = fresh(nl, prefix, "or");
    nl.add_logic(name, vec![a, b], TruthTable::or(2))
}

/// Adds a 2-input XOR node.
pub fn xor2(nl: &mut Netlist, prefix: &str, a: NodeId, b: NodeId) -> NodeId {
    let name = fresh(nl, prefix, "xor");
    nl.add_logic(name, vec![a, b], TruthTable::xor(2))
}

/// Adds a 3-input XOR node (full-adder sum).
pub fn xor3(nl: &mut Netlist, prefix: &str, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
    let name = fresh(nl, prefix, "xor3");
    nl.add_logic(name, vec![a, b, c], TruthTable::xor(3))
}

/// Adds a 3-input majority node (full-adder carry).
pub fn maj3(nl: &mut Netlist, prefix: &str, a: NodeId, b: NodeId, c: NodeId) -> NodeId {
    let name = fresh(nl, prefix, "maj");
    nl.add_logic(name, vec![a, b, c], TruthTable::maj3())
}

/// Adds a single-bit 2:1 mux selecting `b` when `sel` is high, else `a`.
pub fn mux2(nl: &mut Netlist, prefix: &str, sel: NodeId, a: NodeId, b: NodeId) -> NodeId {
    let name = fresh(nl, prefix, "mux");
    nl.add_logic(name, vec![a, b, sel], TruthTable::mux2())
}

/// Balanced AND tree over arbitrarily many inputs (≤3 fanins per node).
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn and_tree(nl: &mut Netlist, prefix: &str, inputs: &[NodeId]) -> NodeId {
    reduce_tree(nl, prefix, inputs, |nl, prefix, chunk| {
        let name = fresh(nl, prefix, "andt");
        nl.add_logic(name, chunk.to_vec(), TruthTable::and(chunk.len()))
    })
}

/// Balanced OR tree over arbitrarily many inputs (≤3 fanins per node).
///
/// # Panics
///
/// Panics if `inputs` is empty.
pub fn or_tree(nl: &mut Netlist, prefix: &str, inputs: &[NodeId]) -> NodeId {
    reduce_tree(nl, prefix, inputs, |nl, prefix, chunk| {
        let name = fresh(nl, prefix, "ort");
        nl.add_logic(name, chunk.to_vec(), TruthTable::or(chunk.len()))
    })
}

fn reduce_tree(
    nl: &mut Netlist,
    prefix: &str,
    inputs: &[NodeId],
    mut gate: impl FnMut(&mut Netlist, &str, &[NodeId]) -> NodeId,
) -> NodeId {
    assert!(
        !inputs.is_empty(),
        "reduction tree needs at least one input"
    );
    let mut layer: Vec<NodeId> = inputs.to_vec();
    while layer.len() > 1 {
        let mut next = Vec::with_capacity(layer.len().div_ceil(3));
        for chunk in layer.chunks(3) {
            if chunk.len() == 1 {
                next.push(chunk[0]);
            } else {
                next.push(gate(nl, prefix, chunk));
            }
        }
        layer = next;
    }
    layer[0]
}

/// Constant word of `width` bits holding `value`.
pub fn const_word(nl: &mut Netlist, prefix: &str, value: u64, width: usize) -> Bus {
    (0..width)
        .map(|i| {
            let name = fresh(nl, prefix, "const");
            nl.add_constant(name, (value >> i) & 1 == 1)
        })
        .collect()
}

/// Word-level 2:1 mux: selects `b` when `sel` is high.
///
/// # Panics
///
/// Panics if the buses differ in width.
pub fn mux2_word(nl: &mut Netlist, prefix: &str, sel: NodeId, a: &Bus, b: &Bus) -> Bus {
    assert_eq!(a.len(), b.len(), "mux2_word width mismatch");
    a.iter()
        .zip(b)
        .map(|(&ai, &bi)| mux2(nl, prefix, sel, ai, bi))
        .collect()
}

/// Balanced N:1 word multiplexer tree with binary select encoding: select
/// value `k` (little-endian over `sels`) routes input `k` to the output.
///
/// Inputs are split at the most-significant select bit, so the tree is as
/// balanced as the input count allows — the structure HLPower's `muxDiff`
/// term tries to keep symmetric between the two FU ports.
///
/// Returns the output bus. With a single input, the input is passed through
/// unchanged (no gates added).
///
/// # Panics
///
/// Panics if `inputs` is empty, widths differ, or `sels` has fewer than
/// `ceil(log2(inputs.len()))` bits.
pub fn mux_tree(nl: &mut Netlist, prefix: &str, sels: &[NodeId], inputs: &[Bus]) -> Bus {
    assert!(!inputs.is_empty(), "mux tree needs at least one input");
    let need = mux_select_bits(inputs.len());
    assert!(
        sels.len() >= need,
        "mux tree over {} inputs needs {} select bits, got {}",
        inputs.len(),
        need,
        sels.len()
    );
    let w = inputs[0].len();
    for b in inputs {
        assert_eq!(b.len(), w, "mux tree width mismatch");
    }
    mux_tree_rec(nl, prefix, &sels[..need], inputs)
}

fn mux_tree_rec(nl: &mut Netlist, prefix: &str, sels: &[NodeId], inputs: &[Bus]) -> Bus {
    if inputs.len() == 1 {
        return inputs[0].clone();
    }
    let bits = mux_select_bits(inputs.len());
    let half = 1usize << (bits - 1);
    let lo = mux_tree_rec(nl, prefix, &sels[..bits - 1], &inputs[..half]);
    let hi = mux_tree_rec(
        nl,
        prefix,
        &sels[..mux_select_bits(inputs.len() - half).min(bits - 1)],
        &inputs[half..],
    );
    mux2_word(nl, prefix, sels[bits - 1], &lo, &hi)
}

/// Number of binary select bits needed for an `n`-input mux.
pub fn mux_select_bits(n: usize) -> usize {
    assert!(n >= 1);
    (usize::BITS - (n - 1).leading_zeros()) as usize
}

/// Skewed (linear chain) N:1 word multiplexer, select encoding identical to
/// [`mux_tree`] but structured as `mux2(s, ..., mux2(s, a, b))` cascades.
/// Deliberately depth-unbalanced; used by glitch ablation experiments.
pub fn mux_chain(nl: &mut Netlist, prefix: &str, sels: &[NodeId], inputs: &[Bus]) -> Bus {
    assert!(!inputs.is_empty());
    let need = mux_select_bits(inputs.len());
    assert!(sels.len() >= need);
    // Select input k by cascading equality decodes: out_0 = in_0;
    // out_k = (sel == k) ? in_k : out_{k-1}.
    let mut acc = inputs[0].clone();
    for (k, inp) in inputs.iter().enumerate().skip(1) {
        let eq = decode_equals(nl, prefix, &sels[..need], k as u64);
        acc = mux2_word(nl, prefix, eq, &acc, inp);
    }
    acc
}

/// One-hot decode node: high when the select bus equals `value`.
pub fn decode_equals(nl: &mut Netlist, prefix: &str, sels: &[NodeId], value: u64) -> NodeId {
    assert!(!sels.is_empty());
    if sels.len() <= 3 {
        let neg: u32 = (0..sels.len())
            .filter(|i| (value >> i) & 1 == 0)
            .map(|i| 1u32 << i)
            .sum();
        let name = fresh(nl, prefix, "dec");
        return nl.add_logic(
            name,
            sels.to_vec(),
            TruthTable::and_with_polarity(sels.len(), neg),
        );
    }
    let lo = decode_equals(nl, prefix, &sels[..3], value & 7);
    let hi = decode_equals(nl, prefix, &sels[3..], value >> 3);
    and2(nl, prefix, lo, hi)
}

/// Ripple-carry adder over two equal-width buses. Returns `(sum, carry_out)`.
///
/// # Panics
///
/// Panics if widths differ or are zero.
pub fn ripple_adder(
    nl: &mut Netlist,
    prefix: &str,
    a: &Bus,
    b: &Bus,
    cin: Option<NodeId>,
) -> (Bus, NodeId) {
    assert_eq!(a.len(), b.len(), "adder width mismatch");
    assert!(!a.is_empty());
    let mut sum = Vec::with_capacity(a.len());
    let mut carry = cin;
    for (&ai, &bi) in a.iter().zip(b) {
        match carry {
            None => {
                // half adder
                sum.push(xor2(nl, prefix, ai, bi));
                carry = Some(and2(nl, prefix, ai, bi));
            }
            Some(c) => {
                sum.push(xor3(nl, prefix, ai, bi, c));
                carry = Some(maj3(nl, prefix, ai, bi, c));
            }
        }
    }
    (sum, carry.expect("non-empty bus"))
}

/// Ripple-borrow subtractor computing `a - b` (two's complement). Returns
/// `(difference, carry_out)`.
pub fn subtractor(nl: &mut Netlist, prefix: &str, a: &Bus, b: &Bus) -> (Bus, NodeId) {
    let nb: Bus = b.iter().map(|&bi| not_gate(nl, prefix, bi)).collect();
    let one = {
        let name = fresh(nl, prefix, "c1");
        nl.add_constant(name, true)
    };
    ripple_adder(nl, prefix, a, &nb, Some(one))
}

/// Combined adder/subtractor functional unit: computes `a + b` when `mode`
/// is low and `a - b` when `mode` is high. This is the shared ALU the
/// paper's add/sub operation type binds to.
pub fn addsub(nl: &mut Netlist, prefix: &str, a: &Bus, b: &Bus, mode: NodeId) -> Bus {
    let bx: Bus = b.iter().map(|&bi| xor2(nl, prefix, bi, mode)).collect();
    let (sum, _cout) = ripple_adder(nl, prefix, a, &bx, Some(mode));
    sum
}

/// Carry-save array multiplier truncated to the operand width: returns the
/// low `W` bits of `a * b` where `W = a.len() = b.len()`.
///
/// Structure: one carry-save adder row per partial product, followed by a
/// ripple vector-merge adder — the classic array multiplier whose long,
/// unbalanced paths make multipliers the dominant glitch source the paper
/// targets.
///
/// # Panics
///
/// Panics if widths differ or are zero.
pub fn array_multiplier(nl: &mut Netlist, prefix: &str, a: &Bus, b: &Bus) -> Bus {
    assert_eq!(a.len(), b.len(), "multiplier width mismatch");
    let w = a.len();
    assert!(w > 0);
    // Partial products needed for the low W bits: pp[i][j] with i+j < W.
    let mut pp: Vec<Vec<NodeId>> = Vec::with_capacity(w);
    for (i, &bi) in b.iter().enumerate() {
        let row: Vec<NodeId> = a[..w - i]
            .to_vec()
            .iter()
            .map(|&aj| and2(nl, prefix, aj, bi))
            .collect();
        pp.push(row);
    }
    // Carry-save accumulation. sums[j]/carries[j] are the bit of weight j.
    let mut sums: Vec<Option<NodeId>> = (0..w).map(|j| Some(pp[0][j])).collect();
    let mut carries: Vec<Option<NodeId>> = vec![None; w];
    for (i, row) in pp.iter().enumerate().skip(1) {
        let mut new_sums: Vec<Option<NodeId>> = vec![None; w];
        let mut new_carries: Vec<Option<NodeId>> = vec![None; w];
        for j in 0..w {
            let addend = if j >= i { Some(row[j - i]) } else { None };
            let mut bits: Vec<NodeId> = Vec::with_capacity(3);
            if let Some(s) = sums[j] {
                bits.push(s);
            }
            if let Some(c) = carries[j] {
                bits.push(c);
            }
            if let Some(x) = addend {
                bits.push(x);
            }
            match bits.len() {
                0 => {}
                1 => new_sums[j] = Some(bits[0]),
                2 => {
                    new_sums[j] = Some(xor2(nl, prefix, bits[0], bits[1]));
                    if j + 1 < w {
                        new_carries[j + 1] = Some(and2(nl, prefix, bits[0], bits[1]));
                    }
                }
                _ => {
                    new_sums[j] = Some(xor3(nl, prefix, bits[0], bits[1], bits[2]));
                    if j + 1 < w {
                        new_carries[j + 1] = Some(maj3(nl, prefix, bits[0], bits[1], bits[2]));
                    }
                }
            }
        }
        sums = new_sums;
        carries = new_carries;
    }
    // Vector-merge: ripple-add the remaining carry vector into the sums.
    let mut out = Vec::with_capacity(w);
    let mut carry: Option<NodeId> = None;
    for j in 0..w {
        let mut bits: Vec<NodeId> = Vec::with_capacity(3);
        if let Some(s) = sums[j] {
            bits.push(s);
        }
        if let Some(c) = carries[j] {
            bits.push(c);
        }
        if let Some(c) = carry.take() {
            bits.push(c);
        }
        match bits.len() {
            0 => {
                let name = fresh(nl, prefix, "z");
                out.push(nl.add_constant(name, false));
            }
            1 => out.push(bits[0]),
            2 => {
                out.push(xor2(nl, prefix, bits[0], bits[1]));
                carry = Some(and2(nl, prefix, bits[0], bits[1]));
            }
            _ => {
                out.push(xor3(nl, prefix, bits[0], bits[1], bits[2]));
                carry = Some(maj3(nl, prefix, bits[0], bits[1], bits[2]));
            }
        }
    }
    out
}

/// A register word: latch outputs (`q`) plus the latch ids needed to connect
/// data inputs later.
#[derive(Clone, Debug)]
pub struct RegisterWord {
    /// Latch output bus (`Q`).
    pub q: Bus,
    /// The latch node ids, in bit order (same ids as `q`).
    pub latches: Vec<NodeId>,
}

/// Allocates a `width`-bit register (its data inputs unconnected).
pub fn register_word(nl: &mut Netlist, prefix: &str, width: usize, init: u64) -> RegisterWord {
    let latches: Vec<NodeId> = (0..width)
        .map(|i| {
            let name = format!("{prefix}_q{i}");
            nl.add_latch(name, (init >> i) & 1 == 1)
        })
        .collect();
    RegisterWord {
        q: latches.clone(),
        latches,
    }
}

/// Connects a register's data inputs through a write-enable: when `en` is
/// high the register captures `d`, otherwise it holds its value.
pub fn connect_register_with_enable(
    nl: &mut Netlist,
    prefix: &str,
    reg: &RegisterWord,
    en: NodeId,
    d: &Bus,
) {
    assert_eq!(d.len(), reg.latches.len(), "register width mismatch");
    for (i, &latch) in reg.latches.iter().enumerate() {
        let next = mux2(nl, prefix, en, reg.q[i], d[i]);
        nl.set_latch_data(latch, next);
    }
}

/// Connects a register's data inputs directly (captures every cycle).
pub fn connect_register(nl: &mut Netlist, reg: &RegisterWord, d: &Bus) {
    assert_eq!(d.len(), reg.latches.len(), "register width mismatch");
    for (i, &latch) in reg.latches.iter().enumerate() {
        nl.set_latch_data(latch, d[i]);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::graph::Netlist;

    /// Evaluates a purely combinational netlist output bus for given input
    /// values (inputs bound in declaration order, LSB-first words).
    fn eval_bus(nl: &Netlist, input_vals: &[(NodeId, bool)], bus: &Bus) -> u64 {
        let mut vals = vec![false; nl.num_nodes()];
        for &(id, v) in input_vals {
            vals[id.index()] = v;
        }
        for id in nl.topo_order() {
            if let crate::graph::NodeKind::Logic { fanins, table } = &nl.node(id).kind {
                let mut row = 0u32;
                for (k, f) in fanins.iter().enumerate() {
                    if vals[f.index()] {
                        row |= 1 << k;
                    }
                }
                vals[id.index()] = table.eval(row);
            } else if let crate::graph::NodeKind::Constant(c) = &nl.node(id).kind {
                vals[id.index()] = *c;
            }
        }
        bus.iter()
            .enumerate()
            .map(|(i, b)| (vals[b.index()] as u64) << i)
            .collect::<Vec<u64>>()
            .iter()
            .sum()
    }

    fn input_word(nl: &mut Netlist, name: &str, width: usize) -> Bus {
        (0..width)
            .map(|i| nl.add_input(format!("{name}{i}")))
            .collect()
    }

    fn bind_word(bus: &Bus, value: u64) -> Vec<(NodeId, bool)> {
        bus.iter()
            .enumerate()
            .map(|(i, &id)| (id, (value >> i) & 1 == 1))
            .collect()
    }

    #[test]
    fn adder_is_correct() {
        let w = 8;
        let mut nl = Netlist::new("add");
        let a = input_word(&mut nl, "a", w);
        let b = input_word(&mut nl, "b", w);
        let (sum, cout) = ripple_adder(&mut nl, "fu", &a, &b, None);
        nl.check().unwrap();
        for (x, y) in [(0u64, 0u64), (1, 1), (255, 1), (123, 200), (77, 178)] {
            let mut binds = bind_word(&a, x);
            binds.extend(bind_word(&b, y));
            let got = eval_bus(&nl, &binds, &sum);
            assert_eq!(got, (x + y) & 0xFF, "{x}+{y}");
            let carry = eval_bus(&nl, &binds, &vec![cout]);
            assert_eq!(carry, (x + y) >> 8, "carry of {x}+{y}");
        }
    }

    #[test]
    fn subtractor_is_correct() {
        let w = 8;
        let mut nl = Netlist::new("sub");
        let a = input_word(&mut nl, "a", w);
        let b = input_word(&mut nl, "b", w);
        let (diff, _) = subtractor(&mut nl, "fu", &a, &b);
        nl.check().unwrap();
        for (x, y) in [(5u64, 3u64), (3, 5), (255, 255), (0, 1), (200, 123)] {
            let mut binds = bind_word(&a, x);
            binds.extend(bind_word(&b, y));
            let got = eval_bus(&nl, &binds, &diff);
            assert_eq!(got, x.wrapping_sub(y) & 0xFF, "{x}-{y}");
        }
    }

    #[test]
    fn addsub_obeys_mode() {
        let w = 6;
        let mut nl = Netlist::new("alu");
        let a = input_word(&mut nl, "a", w);
        let b = input_word(&mut nl, "b", w);
        let mode = nl.add_input("mode");
        let out = addsub(&mut nl, "fu", &a, &b, mode);
        nl.check().unwrap();
        let mask = (1u64 << w) - 1;
        for (x, y) in [(10u64, 7u64), (7, 10), (63, 1), (0, 0)] {
            for m in [false, true] {
                let mut binds = bind_word(&a, x);
                binds.extend(bind_word(&b, y));
                binds.push((mode, m));
                let got = eval_bus(&nl, &binds, &out);
                let want = if m { x.wrapping_sub(y) } else { x + y } & mask;
                assert_eq!(got, want, "x={x} y={y} sub={m}");
            }
        }
    }

    #[test]
    fn multiplier_is_correct() {
        let w = 6;
        let mut nl = Netlist::new("mul");
        let a = input_word(&mut nl, "a", w);
        let b = input_word(&mut nl, "b", w);
        let p = array_multiplier(&mut nl, "fu", &a, &b);
        nl.check().unwrap();
        assert_eq!(p.len(), w);
        let mask = (1u64 << w) - 1;
        for x in [0u64, 1, 2, 3, 7, 31, 63] {
            for y in [0u64, 1, 5, 13, 63] {
                let mut binds = bind_word(&a, x);
                binds.extend(bind_word(&b, y));
                let got = eval_bus(&nl, &binds, &p);
                assert_eq!(got, (x * y) & mask, "{x}*{y}");
            }
        }
    }

    #[test]
    fn multiplier_exhaustive_4bit() {
        let w = 4;
        let mut nl = Netlist::new("mul4");
        let a = input_word(&mut nl, "a", w);
        let b = input_word(&mut nl, "b", w);
        let p = array_multiplier(&mut nl, "fu", &a, &b);
        for x in 0..16u64 {
            for y in 0..16u64 {
                let mut binds = bind_word(&a, x);
                binds.extend(bind_word(&b, y));
                assert_eq!(eval_bus(&nl, &binds, &p), (x * y) & 15, "{x}*{y}");
            }
        }
    }

    #[test]
    fn mux_tree_selects_each_input() {
        for n in [1usize, 2, 3, 5, 8, 11] {
            let w = 4;
            let mut nl = Netlist::new("m");
            let inputs: Vec<Bus> = (0..n)
                .map(|k| input_word(&mut nl, &format!("in{k}_"), w))
                .collect();
            let sel_bits = mux_select_bits(n);
            let sels: Vec<NodeId> = (0..sel_bits.max(1))
                .map(|i| nl.add_input(format!("s{i}")))
                .collect();
            let out = mux_tree(&mut nl, "mx", &sels, &inputs);
            nl.check().unwrap();
            for k in 0..n {
                let mut binds: Vec<(NodeId, bool)> = Vec::new();
                for (j, inp) in inputs.iter().enumerate() {
                    binds.extend(bind_word(inp, (j as u64 + 3) % 16));
                }
                for (i, &s) in sels.iter().enumerate() {
                    binds.push((s, (k >> i) & 1 == 1));
                }
                let got = eval_bus(&nl, &binds, &out);
                assert_eq!(got, (k as u64 + 3) % 16, "n={n} select input {k}");
            }
        }
    }

    #[test]
    fn mux_chain_matches_tree_encoding() {
        let n = 5;
        let w = 3;
        let mut nl = Netlist::new("mc");
        let inputs: Vec<Bus> = (0..n)
            .map(|k| input_word(&mut nl, &format!("in{k}_"), w))
            .collect();
        let sels: Vec<NodeId> = (0..mux_select_bits(n))
            .map(|i| nl.add_input(format!("s{i}")))
            .collect();
        let out = mux_chain(&mut nl, "mx", &sels, &inputs);
        nl.check().unwrap();
        for k in 0..n {
            let mut binds: Vec<(NodeId, bool)> = Vec::new();
            for (j, inp) in inputs.iter().enumerate() {
                binds.extend(bind_word(inp, j as u64 + 1));
            }
            for (i, &s) in sels.iter().enumerate() {
                binds.push((s, (k >> i) & 1 == 1));
            }
            assert_eq!(eval_bus(&nl, &binds, &out), k as u64 + 1, "select {k}");
        }
    }

    #[test]
    fn mux_select_bits_values() {
        assert_eq!(mux_select_bits(1), 0);
        assert_eq!(mux_select_bits(2), 1);
        assert_eq!(mux_select_bits(3), 2);
        assert_eq!(mux_select_bits(4), 2);
        assert_eq!(mux_select_bits(5), 3);
        assert_eq!(mux_select_bits(8), 3);
        assert_eq!(mux_select_bits(9), 4);
    }

    #[test]
    fn decoder_terms() {
        let mut nl = Netlist::new("dec");
        let sels: Vec<NodeId> = (0..5).map(|i| nl.add_input(format!("s{i}"))).collect();
        let hit = decode_equals(&mut nl, "d", &sels, 19); // 0b10011
        nl.check().unwrap();
        for v in 0..32u64 {
            let binds: Vec<(NodeId, bool)> = sels
                .iter()
                .enumerate()
                .map(|(i, &s)| (s, (v >> i) & 1 == 1))
                .collect();
            assert_eq!(eval_bus(&nl, &binds, &vec![hit]) == 1, v == 19, "v={v}");
        }
    }

    #[test]
    fn trees_reduce_wide_inputs() {
        let mut nl = Netlist::new("t");
        let ins: Vec<NodeId> = (0..13).map(|i| nl.add_input(format!("i{i}"))).collect();
        let a = and_tree(&mut nl, "t", &ins);
        let o = or_tree(&mut nl, "t", &ins);
        nl.check().unwrap();
        // all ones -> and=1, or=1; one zero -> and=0
        let mut binds: Vec<(NodeId, bool)> = ins.iter().map(|&i| (i, true)).collect();
        assert_eq!(eval_bus(&nl, &binds, &vec![a]), 1);
        assert_eq!(eval_bus(&nl, &binds, &vec![o]), 1);
        binds[4].1 = false;
        assert_eq!(eval_bus(&nl, &binds, &vec![a]), 0);
        assert_eq!(eval_bus(&nl, &binds, &vec![o]), 1);
    }

    #[test]
    fn register_with_enable_holds() {
        let mut nl = Netlist::new("reg");
        let d = input_word(&mut nl, "d", 4);
        let en = nl.add_input("en");
        let reg = register_word(&mut nl, "r0", 4, 0);
        connect_register_with_enable(&mut nl, "r0", &reg, en, &d);
        nl.check().unwrap();
        assert_eq!(nl.num_latches(), 4);
        // the D input of each latch must be a mux2 over (q, d, en)
        for &l in &reg.latches {
            let fanins = nl.fanins(l);
            assert_eq!(fanins.len(), 1);
        }
    }
}
