//! Exact text serialization of a [`Netlist`].
//!
//! BLIF ([`crate::blif`]) is the *interchange* format: it survives a trip
//! through third-party tools but normalizes node order, inserts boundary
//! buffers for renamed output ports, and reorders latches — so a
//! BLIF round trip is function-preserving, not structure-preserving.
//! The artifact store that caches technology-mapped netlists between
//! experiment runs needs more: the loaded netlist must be **exactly** the
//! netlist that was saved (same node ids, same order, same names), so
//! that a simulation of the cached copy is bit-identical to a simulation
//! of the original, transition counts included.
//!
//! [`write_netlist_text`]/[`parse_netlist_text`] are that exact codec:
//! one line per node in id order, truth tables as raw hex words, names
//! percent-escaped. `parse(write(nl))` reconstructs `nl` field for field,
//! and `write(parse(text)) == text` byte for byte (the in-file fuzzer
//! below proves both over random LUT soups).

use crate::graph::{Netlist, NodeId, NodeKind};
use crate::truth::TruthTable;
use std::fmt;

/// Version tag of the on-disk format; bumped on any layout change so
/// stale cache files are rejected instead of misparsed.
const HEADER: &str = "# hlpower netlist v1";

/// Parse error for [`parse_netlist_text`] (1-based line number plus a
/// description).
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct NetlistTextError {
    /// 1-based source line.
    pub line: usize,
    /// What was wrong.
    pub message: String,
}

impl fmt::Display for NetlistTextError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "netlist text line {}: {}", self.line, self.message)
    }
}

impl std::error::Error for NetlistTextError {}

/// Escapes a net name for whitespace-delimited storage: `%`, whitespace,
/// and non-graphic bytes become `%XX`. Injective, so escaped names stay
/// unique.
fn esc(name: &str) -> String {
    let mut out = String::with_capacity(name.len());
    for b in name.bytes() {
        if b.is_ascii_graphic() && b != b'%' {
            out.push(b as char);
        } else {
            out.push_str(&format!("%{b:02X}"));
        }
    }
    out
}

/// Inverse of [`esc`].
fn unesc(s: &str, line: usize) -> Result<String, NetlistTextError> {
    let mut out = Vec::with_capacity(s.len());
    let bytes = s.as_bytes();
    let mut i = 0;
    while i < bytes.len() {
        if bytes[i] == b'%' {
            let hex = bytes.get(i + 1..i + 3).ok_or_else(|| NetlistTextError {
                line,
                message: format!("truncated escape in `{s}`"),
            })?;
            let hex = std::str::from_utf8(hex).map_err(|_| NetlistTextError {
                line,
                message: format!("bad escape in `{s}`"),
            })?;
            out.push(u8::from_str_radix(hex, 16).map_err(|_| NetlistTextError {
                line,
                message: format!("bad escape `%{hex}` in `{s}`"),
            })?);
            i += 3;
        } else {
            out.push(bytes[i]);
            i += 1;
        }
    }
    String::from_utf8(out).map_err(|_| NetlistTextError {
        line,
        message: format!("escaped name `{s}` is not UTF-8"),
    })
}

fn table_text(t: &TruthTable) -> String {
    let words: Vec<String> = t.words().iter().map(|w| format!("{w:x}")).collect();
    format!("{}:{}", t.num_inputs(), words.join(","))
}

fn table_from_text(s: &str, line: usize) -> Result<TruthTable, NetlistTextError> {
    let err = |message: String| NetlistTextError { line, message };
    let (n, words) = s
        .split_once(':')
        .ok_or_else(|| err(format!("bad table `{s}`")))?;
    let n: usize = n
        .parse()
        .map_err(|_| err(format!("bad table arity `{n}`")))?;
    if n > crate::truth::MAX_INPUTS {
        return Err(err(format!(
            "table arity {n} exceeds the supported maximum"
        )));
    }
    let words: Result<Vec<u64>, _> = words
        .split(',')
        .map(|w| u64::from_str_radix(w, 16))
        .collect();
    let words = words.map_err(|_| err(format!("bad table words in `{s}`")))?;
    let expected = if n >= 6 { 1usize << (n - 6) } else { 1 };
    if words.len() != expected {
        return Err(err(format!(
            "table for {n} inputs needs {expected} words, got {}",
            words.len()
        )));
    }
    Ok(TruthTable::from_words(n, words))
}

/// Serializes a netlist to the exact text format.
///
/// The output is a pure function of the netlist's structure: identical
/// netlists produce identical bytes, and the result of
/// [`parse_netlist_text`] serializes back to the same bytes.
///
/// # Examples
///
/// ```
/// use netlist::{parse_netlist_text, write_netlist_text, Netlist, TruthTable};
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_logic("g", vec![a], TruthTable::inverter());
/// nl.mark_output("o", g);
/// let text = write_netlist_text(&nl);
/// let back = parse_netlist_text(&text).unwrap();
/// assert_eq!(write_netlist_text(&back), text);
/// ```
pub fn write_netlist_text(nl: &Netlist) -> String {
    let mut out = String::new();
    out.push_str(HEADER);
    out.push('\n');
    out.push_str(&format!("name {}\n", esc(nl.name())));
    out.push_str(&format!("nodes {}\n", nl.num_nodes()));
    for (_, node) in nl.nodes() {
        match &node.kind {
            NodeKind::Input => out.push_str(&format!("i {}\n", esc(&node.name))),
            NodeKind::Constant(v) => out.push_str(&format!("c {} {}\n", esc(&node.name), *v as u8)),
            NodeKind::Logic { fanins, table } => {
                out.push_str(&format!("l {} {}", esc(&node.name), table_text(table)));
                for f in fanins {
                    out.push_str(&format!(" {}", f.0));
                }
                out.push('\n');
            }
            NodeKind::Latch { data, init } => {
                // An unconnected latch (data never set) serializes as `-`.
                let data = if *data == NodeId(u32::MAX) {
                    "-".to_string()
                } else {
                    data.0.to_string()
                };
                out.push_str(&format!("f {} {} {}\n", esc(&node.name), *init as u8, data));
            }
        }
    }
    out.push_str(&format!("outputs {}\n", nl.outputs().len()));
    for (port, id) in nl.outputs() {
        out.push_str(&format!("o {} {}\n", esc(port), id.0));
    }
    out.push_str("end\n");
    out
}

/// Parses text written by [`write_netlist_text`] back into the exact
/// original netlist.
///
/// # Errors
///
/// Returns a [`NetlistTextError`] naming the first malformed line; a
/// missing or wrong version header is reported on line 1 so stale cache
/// files from older format versions are refused loudly.
pub fn parse_netlist_text(text: &str) -> Result<Netlist, NetlistTextError> {
    let mut lines = text.lines().enumerate().map(|(i, l)| (i + 1, l));
    let err = |line: usize, message: String| NetlistTextError { line, message };
    let (_, header) = lines
        .next()
        .ok_or_else(|| err(1, "empty input".to_string()))?;
    if header != HEADER {
        return Err(err(
            1,
            format!("expected header `{HEADER}`, got `{header}`"),
        ));
    }
    let mut nl: Option<Netlist> = None;
    let mut expected_nodes: usize = 0;
    let mut latch_data: Vec<(NodeId, NodeId)> = Vec::new();
    let mut seen_end = false;
    for (ln, raw) in lines {
        let toks: Vec<&str> = raw.split_whitespace().collect();
        let Some(&cmd) = toks.first() else { continue };
        match cmd {
            "name" => {
                if toks.len() != 2 {
                    return Err(err(ln, "name needs one token".to_string()));
                }
                nl = Some(Netlist::new(unesc(toks[1], ln)?));
            }
            "nodes" => {
                expected_nodes = toks
                    .get(1)
                    .and_then(|t| t.parse().ok())
                    .ok_or_else(|| err(ln, "bad node count".to_string()))?;
            }
            "i" | "c" | "l" | "f" => {
                let nl = nl
                    .as_mut()
                    .ok_or_else(|| err(ln, "node before name line".to_string()))?;
                let name = unesc(
                    toks.get(1)
                        .ok_or_else(|| err(ln, "node needs a name".to_string()))?,
                    ln,
                )?;
                if nl.find(&name).is_some() {
                    return Err(err(ln, format!("duplicate node name `{name}`")));
                }
                match cmd {
                    "i" => {
                        nl.add_input(name);
                    }
                    "c" => {
                        let v = match toks.get(2) {
                            Some(&"0") => false,
                            Some(&"1") => true,
                            _ => return Err(err(ln, "constant needs 0 or 1".to_string())),
                        };
                        nl.add_constant(name, v);
                    }
                    "l" => {
                        let table = table_from_text(
                            toks.get(2)
                                .ok_or_else(|| err(ln, "logic needs a table".to_string()))?,
                            ln,
                        )?;
                        let fanins: Result<Vec<NodeId>, _> = toks[3..]
                            .iter()
                            .map(|t| t.parse::<u32>().map(NodeId))
                            .collect();
                        let fanins = fanins.map_err(|_| err(ln, "bad fanin id".to_string()))?;
                        if fanins.len() != table.num_inputs() {
                            return Err(err(
                                ln,
                                format!(
                                    "{} fanins for a {}-input table",
                                    fanins.len(),
                                    table.num_inputs()
                                ),
                            ));
                        }
                        // Fanins must refer to already-created nodes: the
                        // format stores nodes in id order and the graph is
                        // a DAG over ids.
                        for f in &fanins {
                            if f.index() >= nl.num_nodes() {
                                return Err(err(ln, format!("forward fanin id {f}")));
                            }
                        }
                        nl.add_logic(name, fanins, table);
                    }
                    _ => {
                        let init = match toks.get(2) {
                            Some(&"0") => false,
                            Some(&"1") => true,
                            _ => return Err(err(ln, "latch needs init 0 or 1".to_string())),
                        };
                        let id = nl.add_latch(name, init);
                        match toks.get(3) {
                            Some(&"-") => {}
                            Some(t) => {
                                let data = t
                                    .parse::<u32>()
                                    .map(NodeId)
                                    .map_err(|_| err(ln, "bad latch data id".to_string()))?;
                                latch_data.push((id, data));
                            }
                            None => return Err(err(ln, "latch needs a data id".to_string())),
                        }
                    }
                }
            }
            "outputs" => {}
            "o" => {
                let nl = nl
                    .as_mut()
                    .ok_or_else(|| err(ln, "output before name line".to_string()))?;
                let port = unesc(
                    toks.get(1)
                        .ok_or_else(|| err(ln, "output needs a port name".to_string()))?,
                    ln,
                )?;
                let id = toks
                    .get(2)
                    .and_then(|t| t.parse::<u32>().ok())
                    .map(NodeId)
                    .ok_or_else(|| err(ln, "bad output node id".to_string()))?;
                if id.index() >= nl.num_nodes() {
                    return Err(err(ln, format!("output refers to missing node {id}")));
                }
                nl.mark_output(port, id);
            }
            "end" => {
                seen_end = true;
                break;
            }
            other => return Err(err(ln, format!("unknown line kind `{other}`"))),
        }
    }
    if !seen_end {
        return Err(err(text.lines().count(), "missing end line".to_string()));
    }
    let mut nl = nl.ok_or_else(|| err(1, "missing name line".to_string()))?;
    if nl.num_nodes() != expected_nodes {
        return Err(err(
            1,
            format!("expected {expected_nodes} nodes, got {}", nl.num_nodes()),
        ));
    }
    for (latch, data) in latch_data {
        if data.index() >= nl.num_nodes() {
            return Err(err(1, format!("latch data refers to missing node {data}")));
        }
        nl.set_latch_data(latch, data);
    }
    Ok(nl)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::testgen::{arb_netlist, assert_exact_match};

    #[test]
    fn roundtrip_is_exact_and_serialization_is_byte_stable() {
        // The artifact-store guarantee: serialize → parse reconstructs the
        // exact netlist, and serialize → parse → serialize is
        // byte-identical — over the fuzzer's random LUT soups.
        for seed in 0..64u64 {
            let nl = arb_netlist(seed);
            nl.check().unwrap();
            let t1 = write_netlist_text(&nl);
            let back = parse_netlist_text(&t1).unwrap_or_else(|e| panic!("seed {seed}: {e}\n{t1}"));
            assert_exact_match(&nl, &back);
            let t2 = write_netlist_text(&back);
            assert_eq!(
                t1, t2,
                "seed {seed}: reserialization must be byte-identical"
            );
        }
    }

    #[test]
    fn names_with_specials_survive() {
        let mut nl = Netlist::new("m odel%x");
        let a = nl.add_input("a b");
        let g = nl.add_logic("g%20", vec![a], TruthTable::inverter());
        nl.mark_output("wide port", g);
        let back = parse_netlist_text(&write_netlist_text(&nl)).unwrap();
        assert_eq!(back.name(), "m odel%x");
        assert!(back.find("a b").is_some());
        assert!(back.find("g%20").is_some());
        assert_eq!(back.outputs()[0].0, "wide port");
    }

    #[test]
    fn unconnected_latch_roundtrips() {
        let mut nl = Netlist::new("u");
        nl.add_latch("q", true);
        let back = parse_netlist_text(&write_netlist_text(&nl)).unwrap();
        assert_eq!(back.num_latches(), 1);
        assert!(back.fanins(back.find("q").unwrap()).is_empty());
    }

    #[test]
    fn rejects_garbage() {
        assert!(parse_netlist_text("").is_err());
        assert!(parse_netlist_text("# hlpower netlist v0\nname t\nend\n").is_err());
        let ok = "# hlpower netlist v1\nname t\nnodes 1\ni a\noutputs 0\nend\n";
        assert!(parse_netlist_text(ok).is_ok());
        // Wrong node count.
        assert!(
            parse_netlist_text("# hlpower netlist v1\nname t\nnodes 2\ni a\noutputs 0\nend\n")
                .is_err()
        );
        // Forward fanin reference.
        assert!(parse_netlist_text(
            "# hlpower netlist v1\nname t\nnodes 2\nl g 1:2 1\ni a\noutputs 0\nend\n"
        )
        .is_err());
        // Truncated file (no end line).
        assert!(parse_netlist_text("# hlpower netlist v1\nname t\nnodes 1\ni a\n").is_err());
        // Arity mismatch between table and fanins.
        assert!(parse_netlist_text(
            "# hlpower netlist v1\nname t\nnodes 2\ni a\nl g 2:8 0\noutputs 0\nend\n"
        )
        .is_err());
    }

    #[test]
    fn mapped_style_netlist_roundtrips_through_blif_writer_too() {
        // Sanity: the exact codec and the BLIF writer agree on what the
        // netlist computes (the BLIF trip may normalize structure; the
        // exact trip must not).
        let nl = arb_netlist(7);
        let exact = parse_netlist_text(&write_netlist_text(&nl)).unwrap();
        assert_eq!(exact.num_logic(), nl.num_logic());
        assert_eq!(exact.num_latches(), nl.num_latches());
        assert_eq!(exact.stats(), nl.stats());
    }
}
