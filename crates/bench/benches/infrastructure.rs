//! Benchmarks for the substrate: unit-delay simulation throughput,
//! Hungarian matching scaling, and BLIF I/O. Plain `harness = false`
//! timers (criterion is unavailable offline).
//!
//! ```text
//! cargo bench -p hlpower-bench --bench infrastructure
//! ```

use gatesim::CycleSim;
use hlpower::flow::{bind, prepare, sa_table_for};
use hlpower::matching::max_weight_matching;
use hlpower::{elaborate, Binder, DatapathConfig, FlowConfig};
use netlist::{parse_blif, write_blif};
use std::time::Instant;

/// Times `iters` runs of `f` (after one warm-up) and prints mean ms/iter.
fn bench(label: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{label:40} {per:10.3} ms/iter  ({iters} iters)");
}

fn bench_simulation() {
    // Simulate the bound `pr` datapath (the Table 3 inner loop).
    let cfg = FlowConfig {
        width: 8,
        sa_width: 6,
        ..FlowConfig::default()
    };
    let p = cdfg::profile("pr").unwrap();
    let g = cdfg::generate(p, p.seed);
    let rc = hlpower::paper_constraint("pr").unwrap();
    let (sched, rb) = prepare(&g, &rc, &cfg);
    let binder = Binder::HlPower { alpha: 0.5 };
    let mut table = sa_table_for(&cfg, binder);
    let fb = bind(&g, &sched, &rb, &rc, binder, &mut table).fb;
    let dp = elaborate(&g, &sched, &rb, &fb, &DatapathConfig::with_width(cfg.width));
    let mapped = mapper::map(
        &dp.netlist,
        &mapper::MapConfig::new(4, mapper::MapObjective::GlitchSa),
    )
    .netlist;

    bench("simulation/pr_datapath_100_cycles", 20, || {
        let mut sim = CycleSim::new(&mapped);
        let data: Vec<u64> = (0..dp.data_ports.len() as u64).collect();
        for cyc in 0..100u64 {
            let step = (cyc % dp.num_steps as u64) as u32;
            sim.step(&dp.input_vector(step, &data));
        }
        let _ = sim.stats().total_transitions;
    });
}

fn bench_matching() {
    for n in [8usize, 16, 32, 64] {
        // Deterministic dense weights.
        let w: Vec<Vec<Option<f64>>> = (0..n)
            .map(|r| {
                (0..n)
                    .map(|c| Some(1.0 + ((r * 31 + c * 17) % 97) as f64))
                    .collect()
            })
            .collect();
        bench(&format!("hungarian/{n}"), 10, || {
            max_weight_matching(&w);
        });
    }
}

fn bench_blif() {
    let nl = {
        let mut nl = netlist::Netlist::new("blifbench");
        let a: Vec<_> = (0..12).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..12).map(|i| nl.add_input(format!("b{i}"))).collect();
        let p = netlist::cells::array_multiplier(&mut nl, "m", &a, &b);
        for (i, s) in p.iter().enumerate() {
            nl.mark_output(format!("p{i}"), *s);
        }
        nl
    };
    let text = write_blif(&nl);
    bench("blif/write_mult12", 20, || {
        write_blif(&nl);
    });
    bench("blif/parse_mult12", 20, || {
        parse_blif(&text).unwrap().flatten(None, &[]).unwrap();
    });
}

fn main() {
    bench_simulation();
    bench_matching();
    bench_blif();
}
