//! Criterion benchmarks for the substrate: unit-delay simulation
//! throughput, Hungarian matching scaling, and BLIF I/O.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use gatesim::CycleSim;
use hlpower::flow::{bind, prepare, sa_table_for};
use hlpower::matching::max_weight_matching;
use hlpower::{elaborate, Binder, DatapathConfig, FlowConfig};
use netlist::{parse_blif, write_blif};

fn bench_simulation(c: &mut Criterion) {
    // Simulate the bound `pr` datapath (the Table 3 inner loop).
    let cfg = FlowConfig { width: 8, sa_width: 6, ..FlowConfig::default() };
    let p = cdfg::profile("pr").unwrap();
    let g = cdfg::generate(p, p.seed);
    let rc = hlpower::paper_constraint("pr").unwrap();
    let (sched, rb) = prepare(&g, &rc, &cfg);
    let binder = Binder::HlPower { alpha: 0.5 };
    let mut table = sa_table_for(&cfg, binder);
    let (fb, _) = bind(&g, &sched, &rb, &rc, binder, &mut table);
    let dp = elaborate(&g, &sched, &rb, &fb, &DatapathConfig::with_width(cfg.width));
    let mapped = mapper::map(
        &dp.netlist,
        &mapper::MapConfig::new(4, mapper::MapObjective::GlitchSa),
    )
    .netlist;

    let mut group = c.benchmark_group("simulation");
    group.bench_function("pr_datapath_100_cycles", |b| {
        b.iter(|| {
            let mut sim = CycleSim::new(&mapped);
            let data: Vec<u64> = (0..dp.data_ports.len() as u64).collect();
            for cyc in 0..100u64 {
                let step = (cyc % dp.num_steps as u64) as u32;
                sim.step(&dp.input_vector(step, &data));
            }
            sim.stats().total_transitions
        })
    });
    group.finish();
}

fn bench_matching(c: &mut Criterion) {
    let mut group = c.benchmark_group("hungarian");
    for n in [8usize, 16, 32, 64] {
        // Deterministic dense weights.
        let w: Vec<Vec<Option<f64>>> = (0..n)
            .map(|r| {
                (0..n)
                    .map(|c| Some(1.0 + ((r * 31 + c * 17) % 97) as f64))
                    .collect()
            })
            .collect();
        group.bench_with_input(BenchmarkId::from_parameter(n), &w, |b, w| {
            b.iter(|| max_weight_matching(w))
        });
    }
    group.finish();
}

fn bench_blif(c: &mut Criterion) {
    let nl = {
        let mut nl = netlist::Netlist::new("blifbench");
        let a: Vec<_> = (0..12).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..12).map(|i| nl.add_input(format!("b{i}"))).collect();
        let p = netlist::cells::array_multiplier(&mut nl, "m", &a, &b);
        for (i, s) in p.iter().enumerate() {
            nl.mark_output(format!("p{i}"), *s);
        }
        nl
    };
    let text = write_blif(&nl);
    let mut group = c.benchmark_group("blif");
    group.bench_function("write_mult12", |b| b.iter(|| write_blif(&nl)));
    group.bench_function("parse_mult12", |b| {
        b.iter(|| parse_blif(&text).unwrap().flatten(None, &[]).unwrap())
    });
    group.finish();
}

criterion_group!(benches, bench_simulation, bench_matching, bench_blif);
criterion_main!(benches);
