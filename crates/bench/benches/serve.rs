//! Warm daemon throughput: the same 32 suite jobs shipped to an
//! in-process TCP daemon as 32 single-request round-trips versus one
//! `batch 32` frame. Plain `harness = false` timer (criterion is
//! unavailable offline).
//!
//! The daemon serves a pre-warmed store, so every job is answered from
//! artifacts with zero schedule/map/simulate executions — what the
//! timing isolates is the service architecture itself: per-request
//! dial + round-trip + per-request flush on the sequential side,
//! against one frame fanned out across the worker pool on the batched
//! side. The asserted floor is **batched ≥ 2x sequential** — that
//! factor comes from the fan-out, so it gates hosts with ≥ 2 available
//! cores; on a single-core host only the wire/flush savings remain and
//! the floor degrades to "batching must not be slower" (the measured
//! ratio is still recorded). `BENCH_serve.json` at the workspace root
//! tracks the curve either way.
//!
//! Min-of-N timing keeps scheduler noise from failing the floor on a
//! loaded machine.
//!
//! ```text
//! cargo bench -p hlpower-bench --bench serve
//! ```

use hlpower::api::{self, Endpoint, JobRequest, Server, Service};
use hlpower::ArtifactStore;
use std::sync::Arc;
use std::time::Instant;

/// Best-of-`iters` wall time of `f`, in seconds (after one warm-up).
fn min_secs(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

fn main() {
    let base = std::env::temp_dir().join(format!("hlpower-serve-bench-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&base);
    let store = Arc::new(ArtifactStore::open(&base).expect("create bench store"));
    let service = Arc::new(Service::new().with_store(store));

    let server =
        Server::bind(&Endpoint::Tcp("127.0.0.1:0".to_string())).expect("bind bench daemon");
    let endpoint = server.endpoint().expect("bound endpoint");
    let serve_handle = {
        let service = service.clone();
        std::thread::spawn(move || server.serve(service))
    };

    // 32 small jobs: large enough to amortize, small enough that the
    // wire and fan-out — not the flow — dominate once the store is
    // warm. One benchmark keeps every job's warm cost identical, so the
    // sequential/batched ratio measures the architecture, not the mix.
    let reqs: Vec<JobRequest> = (0..32)
        .map(|_| JobRequest::suite("wang").width(4).sa_width(4).cycles(100))
        .collect();
    let jobs = reqs.len();

    // Warm the store (and the scheduler's cost model) once; everything
    // timed below is answered from artifacts.
    for rep in api::request_batch(&endpoint, &reqs).expect("warm-up batch") {
        rep.expect("warm-up job succeeds");
    }

    let iters = 10;
    let sequential = min_secs(iters, || {
        for req in &reqs {
            api::request(&endpoint, req).expect("sequential round-trip");
        }
    });
    println!(
        "serve/warm_suite32/sequential       {:10.3} ms/run  (min of {iters})",
        sequential * 1e3
    );

    let batched = min_secs(iters, || {
        for rep in api::request_batch(&endpoint, &reqs).expect("batched round-trip") {
            rep.expect("batched job succeeds");
        }
    });
    println!(
        "serve/warm_suite32/batched          {:10.3} ms/run  (min of {iters})",
        batched * 1e3
    );

    api::stop_daemon(&endpoint).expect("stop bench daemon");
    serve_handle
        .join()
        .expect("serve thread must not panic")
        .expect("graceful stop exits Ok");
    let _ = std::fs::remove_dir_all(&base);

    let speedup = sequential / batched;
    let cores = std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1);
    // The 2x factor is a fan-out claim; a single-core host can only
    // save the per-request dial/round-trip/flush, so the floor there is
    // "batching must not be slower".
    let floor = if cores >= 2 { 2.0 } else { 1.0 };
    println!(
        "serve/warm_suite32/batch_speedup    {speedup:7.1}x (floor {floor}x on {cores} core(s))"
    );

    // Machine-readable trajectory for future PRs, at the workspace root.
    let json = format!(
        "{{\n  \"benchmark\": \"warm_suite32\",\n  \"jobs\": {jobs},\n  \"cores\": {cores},\n  \
         \"sequential_ms\": {:.3},\n  \"batched_ms\": {:.3},\n  \
         \"batch_vs_sequential_speedup\": {speedup:.2},\n  \
         \"batch_vs_sequential_floor\": {floor:.1}\n}}\n",
        sequential * 1e3,
        batched * 1e3
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_serve.json");
    std::fs::write(out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("serve/trajectory written to         {out}");

    assert!(
        speedup >= floor,
        "batched warm throughput regressed below the {floor}x acceptance floor vs \
         single-request round-trips (sequential {:.3} ms, batched {:.3} ms, {speedup:.1}x \
         on {cores} core(s))",
        sequential * 1e3,
        batched * 1e3
    );
}
