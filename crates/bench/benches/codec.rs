//! Warm artifact-store reads: the same mapped 8x8 multiplier netlist,
//! stored once as text and once as binary (`hlpbin`), timed through the
//! store's `get` path. Plain `harness = false` timer (criterion is
//! unavailable offline).
//!
//! Three timings, two asserted floors:
//!
//! * **text get+parse** — warm `load_mapped` from a text store: the
//!   full line-oriented parse plus the structural `check` walk.
//! * **binary get+decode** — warm `load_mapped` from a binary store:
//!   the exact codec rebuilding the owned netlist. Still allocates one
//!   name string per node, so the win is real but bounded; the floor
//!   asserted here is conservative (≥ 2x).
//! * **binary get+open** — warm `raw_get` plus `BinReader::open`:
//!   checksum-validated, section-sliced access to the mmap'd bytes with
//!   **no per-node parsing**. This is what the daemon's no-transcode
//!   `store get` serves and what "bounded by the wire, not the parser"
//!   means; the floor asserted against the text parse is ≥ 5x.
//!
//! Min-of-N timing keeps scheduler noise from failing the floors on a
//! loaded machine.
//!
//! ```text
//! cargo bench -p hlpower-bench --bench codec
//! ```

use hlpower::{ArtifactStore, Fingerprint, MappedArtifact, StoreFormat};
use netlist::binio::{BinReader, KIND_MAPPED};
use std::time::Instant;

/// Best-of-`iters` wall time of `f`, in seconds (after one warm-up).
fn min_secs(iters: u32, mut f: impl FnMut()) -> f64 {
    f();
    let mut best = f64::INFINITY;
    for _ in 0..iters {
        let t = Instant::now();
        f();
        best = best.min(t.elapsed().as_secs_f64());
    }
    best
}

/// The benchmark subject: a 16x16 array multiplier mapped to 4-LUTs —
/// the store's netlist-artifact hot case, big enough that codec time
/// dominates the fixed per-get syscall cost.
fn mapped_multiplier() -> MappedArtifact {
    let w = 16;
    let mut nl = netlist::Netlist::new("mul16");
    let a: Vec<_> = (0..w).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<_> = (0..w).map(|i| nl.add_input(format!("b{i}"))).collect();
    let p = netlist::cells::array_multiplier(&mut nl, "m", &a, &b);
    for (i, s) in p.iter().enumerate() {
        nl.mark_output(format!("p{i}"), *s);
    }
    let mapped = mapper::map(
        &nl,
        &mapper::MapConfig::new(4, mapper::MapObjective::GlitchSa),
    );
    MappedArtifact {
        netlist: mapped.netlist,
        luts: mapped.stats.luts,
        depth: mapped.stats.depth,
        estimated_sa: mapped.stats.estimated_sa,
        registers: 2 * w,
    }
}

fn report(label: &str, secs: f64) {
    println!(
        "codec/warm_mapped_mul16/{label:16} {:10.3} ms/iter  (min of 30)",
        secs * 1e3
    );
}

fn main() {
    let artifact = mapped_multiplier();
    let base = std::env::temp_dir().join(format!("hlpower-codec-bench-{}", std::process::id()));
    let fp = Fingerprint(1);
    let iters = 30;

    let text_dir = base.join("text");
    let _ = std::fs::remove_dir_all(&text_dir);
    let text_store = ArtifactStore::open(&text_dir)
        .expect("create bench store")
        .with_format(StoreFormat::Text);
    text_store.save_mapped(fp, &artifact);
    let text_parse = min_secs(iters, || {
        let back = text_store.load_mapped(fp).expect("warm get hits");
        assert_eq!(back.luts, artifact.luts);
    });
    report("text_get+parse", text_parse);

    let bin_dir = base.join("binary");
    let _ = std::fs::remove_dir_all(&bin_dir);
    let bin_store = ArtifactStore::open(&bin_dir).expect("create bench store");
    bin_store.save_mapped(fp, &artifact);
    let bin_decode = min_secs(iters, || {
        let back = bin_store.load_mapped(fp).expect("warm get hits");
        assert_eq!(back.luts, artifact.luts);
    });
    report("binary_get+decode", bin_decode);

    let name = fp.to_string();
    let bin_open = min_secs(iters, || {
        let data = bin_store.raw_get("netlists", &name).expect("warm get hits");
        let r = BinReader::open(&data, KIND_MAPPED, 1).expect("valid container");
        // Touch both sections: metrics and the netlist payload slice.
        assert!(r.section(0).expect("metrics section").len() >= 32);
        assert!(!r.section(1).expect("netlist section").is_empty());
    });
    report("binary_get+open", bin_open);

    let _ = std::fs::remove_dir_all(&base);
    let decode_speedup = text_parse / bin_decode;
    let open_speedup = text_parse / bin_open;
    println!("codec/warm_mapped_mul16/decode_speedup {decode_speedup:7.1}x (floor 2x)");
    println!("codec/warm_mapped_mul16/open_speedup   {open_speedup:7.1}x (floor 5x)");
    assert!(
        decode_speedup >= 2.0,
        "binary warm get+decode must be at least 2x faster than text \
         (text {:.3} ms, binary {:.3} ms, {:.1}x)",
        text_parse * 1e3,
        bin_decode * 1e3,
        decode_speedup
    );
    assert!(
        open_speedup >= 5.0,
        "binary warm open (no per-node parsing) must be at least 5x faster than \
         the text parse (text {:.3} ms, open {:.3} ms, {:.1}x)",
        text_parse * 1e3,
        bin_open * 1e3,
        open_speedup
    );
}
