//! Benchmarks for switching-activity estimation and technology mapping —
//! the machinery behind every Eq. 4 edge weight. Plain `harness = false`
//! timers (criterion is unavailable offline).
//!
//! ```text
//! cargo bench -p hlpower-bench --bench estimation
//! ```

use activity::{analyze, analyze_zero_delay, ActivityConfig, ZeroDelayModel};
use cdfg::FuType;
use gatesim::{run_random, run_random_word};
use hlpower::partial_datapath;
use mapper::{enumerate_cuts, map, CutConfig, MapConfig, MapObjective};
use netlist::{cells, Netlist, NodeId};
use std::time::Instant;

fn multiplier_netlist(w: usize) -> Netlist {
    let mut nl = Netlist::new("mul");
    let a: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("b{i}"))).collect();
    let p = cells::array_multiplier(&mut nl, "m", &a, &b);
    for (i, s) in p.iter().enumerate() {
        nl.mark_output(format!("p{i}"), *s);
    }
    nl
}

/// Times `iters` runs of `f` (after one warm-up) and prints mean ms/iter.
fn bench(label: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{label:40} {per:10.3} ms/iter  ({iters} iters)");
}

fn bench_estimators() {
    let nl = multiplier_netlist(8);
    let mapped = map(&nl, &MapConfig::new(4, MapObjective::Depth)).netlist;
    let cfg = ActivityConfig::uniform();
    bench("estimation/glitch_aware_mult8", 20, || {
        analyze(&mapped, &cfg);
    });
    bench("estimation/chou_roy_mult8", 20, || {
        analyze_zero_delay(&mapped, &cfg, ZeroDelayModel::ChouRoy);
    });
    bench("estimation/najm_mult8", 20, || {
        analyze_zero_delay(&mapped, &cfg, ZeroDelayModel::Najm);
    });
}

fn bench_mapping() {
    let nl = multiplier_netlist(8);
    bench("mapping/cut_enum_mult8_k4", 20, || {
        enumerate_cuts(&nl, &CutConfig::default());
    });
    for obj in [
        MapObjective::Depth,
        MapObjective::AreaFlow,
        MapObjective::GlitchSa,
    ] {
        bench(&format!("mapping/map_mult8/{obj:?}"), 20, || {
            map(&nl, &MapConfig::new(4, obj));
        });
    }
}

fn bench_sa_table_entry() {
    // Cost of one precalculated-table miss: build the Figure 2 partial
    // datapath, map it, and estimate its SA.
    for (a, b) in [(2usize, 2usize), (4, 4), (8, 2)] {
        bench(&format!("sa_table_entry/mult_w6/{a}x{b}"), 5, || {
            hlpower::compute_sa(FuType::Mul, a, b, 6, 4, true);
        });
    }
    bench("sa_table_entry/partial_datapath_build", 20, || {
        partial_datapath(FuType::Mul, 4, 4, 6);
    });
}

/// Scalar vs word-parallel unit-delay simulation throughput on the
/// mapped array-multiplier benchmark — the bit-slicing payoff, reported
/// as simulated transitions per second. The word engine advances 64
/// vector lanes per event-wheel pass, so its per-lane cost collapses.
fn bench_simulators() {
    let nl = multiplier_netlist(8);
    let mapped = map(&nl, &MapConfig::new(4, MapObjective::GlitchSa)).netlist;
    let steps = 2000u64;
    let seed = 42u64;
    // Median of three timed repetitions (after one warm-up) so a single
    // scheduler hiccup cannot fail the floor assert below.
    let rate = |label: &str, f: &dyn Fn() -> u64| -> f64 {
        f(); // warm-up
        let mut rates = [0.0f64; 3];
        let mut transitions = 0;
        for r in &mut rates {
            let start = Instant::now();
            transitions = f();
            *r = transitions as f64 / start.elapsed().as_secs_f64();
        }
        rates.sort_by(|a, b| a.total_cmp(b));
        let per_s = rates[1];
        println!("{label:40} {per_s:14.0} transitions/s  ({transitions} transitions)");
        per_s
    };
    let scalar = rate("simulation/scalar_mult8", &|| {
        run_random(&mapped, steps, seed).total_transitions
    });
    let word = rate("simulation/word64_mult8", &|| {
        run_random_word(&mapped, steps, seed, 64).total_transitions
    });
    let speedup = word / scalar;
    println!("simulation/word64_vs_scalar_speedup      {speedup:13.1}x  (acceptance floor: 8x)");
    assert!(
        speedup >= 8.0,
        "word-parallel simulation regressed below the 8x acceptance floor: {speedup:.1}x"
    );
}

/// Cold-vs-warm artifact store on one full benchmark × binder job: the
/// cold run computes schedule → bind → elaborate → map → simulate and
/// persists every artifact; warm runs rebuild the same `FlowResult`
/// from the store (binding still executes — it is cheap once the SA
/// shard is loaded). The payoff the store exists for, reported as a
/// speedup with an asserted floor.
fn bench_store() {
    use hlpower::{ArtifactStore, Binder, FlowConfig, Pipeline};
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("hlpower-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let p = cdfg::profile("wang").unwrap();
    let suite = vec![(
        cdfg::generate(p, p.seed),
        hlpower::paper_constraint("wang").unwrap(),
    )];
    let binders = [Binder::HlPower { alpha: 0.5 }];
    let cfg = FlowConfig {
        width: 8,
        sa_width: 6,
        sim_cycles: 300,
        lanes: 64,
        ..FlowConfig::default()
    };

    let cold_start = Instant::now();
    let store = Arc::new(ArtifactStore::open(&dir).unwrap());
    Pipeline::with_store(cfg.clone(), store).run_matrix(&suite, &binders, 1);
    let cold = cold_start.elapsed().as_secs_f64();

    // Median of three warm runs, each through a fresh pipeline + store
    // handle (as a new process would be).
    let mut warms = [0.0f64; 3];
    for w in &mut warms {
        let start = Instant::now();
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let pipeline = Pipeline::with_store(cfg.clone(), store);
        pipeline.run_matrix(&suite, &binders, 1);
        let stats = pipeline.stats();
        assert_eq!(stats.stages.mappings, 0, "warm run must not map");
        assert_eq!(stats.stages.simulations, 0, "warm run must not simulate");
        *w = start.elapsed().as_secs_f64();
    }
    warms.sort_by(|a, b| a.total_cmp(b));
    let warm = warms[1];
    let speedup = cold / warm;
    println!(
        "store/cold_wang_full_job                 {:10.3} ms",
        cold * 1e3
    );
    println!(
        "store/warm_wang_full_job                 {:10.3} ms",
        warm * 1e3
    );
    println!("store/warm_vs_cold_speedup               {speedup:13.1}x  (acceptance floor: 2x)");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        speedup >= 2.0,
        "warm artifact-store rerun regressed below the 2x acceptance floor: {speedup:.1}x"
    );
}

fn main() {
    bench_estimators();
    bench_mapping();
    bench_sa_table_entry();
    bench_simulators();
    bench_store();
}
