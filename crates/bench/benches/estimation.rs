//! Criterion benchmarks for switching-activity estimation and technology
//! mapping — the machinery behind every Eq. 4 edge weight.

use activity::{analyze, analyze_zero_delay, ActivityConfig, ZeroDelayModel};
use cdfg::FuType;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hlpower::partial_datapath;
use mapper::{enumerate_cuts, map, CutConfig, MapConfig, MapObjective};
use netlist::{cells, Netlist, NodeId};

fn multiplier_netlist(w: usize) -> Netlist {
    let mut nl = Netlist::new("mul");
    let a: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("b{i}"))).collect();
    let p = cells::array_multiplier(&mut nl, "m", &a, &b);
    for (i, s) in p.iter().enumerate() {
        nl.mark_output(format!("p{i}"), *s);
    }
    nl
}

fn bench_estimators(c: &mut Criterion) {
    let nl = multiplier_netlist(8);
    let mapped = map(&nl, &MapConfig::new(4, MapObjective::Depth)).netlist;
    let cfg = ActivityConfig::uniform();
    let mut group = c.benchmark_group("estimation");
    group.bench_function("glitch_aware_mult8", |b| b.iter(|| analyze(&mapped, &cfg)));
    group.bench_function("chou_roy_mult8", |b| {
        b.iter(|| analyze_zero_delay(&mapped, &cfg, ZeroDelayModel::ChouRoy))
    });
    group.bench_function("najm_mult8", |b| {
        b.iter(|| analyze_zero_delay(&mapped, &cfg, ZeroDelayModel::Najm))
    });
    group.finish();
}

fn bench_mapping(c: &mut Criterion) {
    let nl = multiplier_netlist(8);
    let mut group = c.benchmark_group("mapping");
    group.sample_size(20);
    group.bench_function("cut_enum_mult8_k4", |b| {
        b.iter(|| enumerate_cuts(&nl, &CutConfig::default()))
    });
    for obj in [MapObjective::Depth, MapObjective::AreaFlow, MapObjective::GlitchSa] {
        group.bench_with_input(
            BenchmarkId::new("map_mult8", format!("{obj:?}")),
            &obj,
            |b, &obj| b.iter(|| map(&nl, &MapConfig::new(4, obj))),
        );
    }
    group.finish();
}

fn bench_sa_table_entry(c: &mut Criterion) {
    // Cost of one precalculated-table miss: build the Figure 2 partial
    // datapath, map it, and estimate its SA.
    let mut group = c.benchmark_group("sa_table_entry");
    group.sample_size(10);
    for (a, b) in [(2usize, 2usize), (4, 4), (8, 2)] {
        group.bench_with_input(
            BenchmarkId::new("mult_w6", format!("{a}x{b}")),
            &(a, b),
            |bch, &(a, b)| {
                bch.iter(|| hlpower::compute_sa(FuType::Mul, a, b, 6, 4, true))
            },
        );
    }
    group.bench_function("partial_datapath_build_only", |b| {
        b.iter(|| partial_datapath(FuType::Mul, 4, 4, 6))
    });
    group.finish();
}

criterion_group!(benches, bench_estimators, bench_mapping, bench_sa_table_entry);
criterion_main!(benches);
