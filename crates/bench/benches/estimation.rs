//! Benchmarks for switching-activity estimation and technology mapping —
//! the machinery behind every Eq. 4 edge weight. Plain `harness = false`
//! timers (criterion is unavailable offline).
//!
//! ```text
//! cargo bench -p hlpower-bench --bench estimation
//! ```

use activity::{analyze, analyze_zero_delay, ActivityConfig, ZeroDelayModel};
use cdfg::FuType;
use gatesim::{run_random, run_random_word};
use hlpower::partial_datapath;
use mapper::{enumerate_cuts, map, CutConfig, MapConfig, MapObjective};
use netlist::{cells, Netlist, NodeId};
use std::time::Instant;

fn multiplier_netlist(w: usize) -> Netlist {
    let mut nl = Netlist::new("mul");
    let a: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("b{i}"))).collect();
    let p = cells::array_multiplier(&mut nl, "m", &a, &b);
    for (i, s) in p.iter().enumerate() {
        nl.mark_output(format!("p{i}"), *s);
    }
    nl
}

/// Times `iters` runs of `f` (after one warm-up) and prints mean ms/iter.
fn bench(label: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{label:40} {per:10.3} ms/iter  ({iters} iters)");
}

fn bench_estimators() {
    let nl = multiplier_netlist(8);
    let mapped = map(&nl, &MapConfig::new(4, MapObjective::Depth)).netlist;
    let cfg = ActivityConfig::uniform();
    bench("estimation/glitch_aware_mult8", 20, || {
        analyze(&mapped, &cfg);
    });
    bench("estimation/chou_roy_mult8", 20, || {
        analyze_zero_delay(&mapped, &cfg, ZeroDelayModel::ChouRoy);
    });
    bench("estimation/najm_mult8", 20, || {
        analyze_zero_delay(&mapped, &cfg, ZeroDelayModel::Najm);
    });
}

fn bench_mapping() {
    let nl = multiplier_netlist(8);
    bench("mapping/cut_enum_mult8_k4", 20, || {
        enumerate_cuts(&nl, &CutConfig::default());
    });
    for obj in [
        MapObjective::Depth,
        MapObjective::AreaFlow,
        MapObjective::GlitchSa,
    ] {
        bench(&format!("mapping/map_mult8/{obj:?}"), 20, || {
            map(&nl, &MapConfig::new(4, obj));
        });
    }
}

fn bench_sa_table_entry() {
    // Cost of one precalculated-table miss: build the Figure 2 partial
    // datapath, map it, and estimate its SA.
    for (a, b) in [(2usize, 2usize), (4, 4), (8, 2)] {
        bench(&format!("sa_table_entry/mult_w6/{a}x{b}"), 5, || {
            hlpower::compute_sa(FuType::Mul, a, b, 6, 4, true);
        });
    }
    bench("sa_table_entry/partial_datapath_build", 20, || {
        partial_datapath(FuType::Mul, 4, 4, 6);
    });
}

/// Scalar vs word-parallel unit-delay simulation throughput on the
/// mapped array-multiplier benchmark — the bit-slicing payoff, reported
/// as simulated transitions per second. The word engine advances 64
/// vector lanes per event-wheel pass, so its per-lane cost collapses.
fn bench_simulators() {
    let nl = multiplier_netlist(8);
    let mapped = map(&nl, &MapConfig::new(4, MapObjective::GlitchSa)).netlist;
    let steps = 2000u64;
    let seed = 42u64;
    // Median of three timed repetitions (after one warm-up) so a single
    // scheduler hiccup cannot fail the floor assert below.
    let rate = |label: &str, f: &dyn Fn() -> u64| -> f64 {
        f(); // warm-up
        let mut rates = [0.0f64; 3];
        let mut transitions = 0;
        for r in &mut rates {
            let start = Instant::now();
            transitions = f();
            *r = transitions as f64 / start.elapsed().as_secs_f64();
        }
        rates.sort_by(|a, b| a.total_cmp(b));
        let per_s = rates[1];
        println!("{label:40} {per_s:14.0} transitions/s  ({transitions} transitions)");
        per_s
    };
    let scalar = rate("simulation/scalar_mult8", &|| {
        run_random(&mapped, steps, seed).total_transitions
    });
    let word = rate("simulation/word64_mult8", &|| {
        run_random_word(&mapped, steps, seed, 64).total_transitions
    });
    let speedup = word / scalar;
    println!("simulation/word64_vs_scalar_speedup      {speedup:13.1}x  (acceptance floor: 8x)");
    assert!(
        speedup >= 8.0,
        "word-parallel simulation regressed below the 8x acceptance floor: {speedup:.1}x"
    );
}

fn main() {
    bench_estimators();
    bench_mapping();
    bench_sa_table_entry();
    bench_simulators();
}
