//! Benchmarks for switching-activity estimation and technology mapping —
//! the machinery behind every Eq. 4 edge weight. Plain `harness = false`
//! timers (criterion is unavailable offline).
//!
//! ```text
//! cargo bench -p hlpower-bench --bench estimation
//! ```

use activity::{analyze, analyze_zero_delay, ActivityConfig, ZeroDelayModel};
use cdfg::FuType;
use gatesim::{
    CycleSim, SlabSim, SlabVectorSource, VectorSource, WordSim, WordVectorSource, MAX_LANES,
};
use hlpower::partial_datapath;
use mapper::{enumerate_cuts, map, CutConfig, MapConfig, MapObjective};
use netlist::{cells, Netlist, NodeId};
use std::time::Instant;

fn multiplier_netlist(w: usize) -> Netlist {
    let mut nl = Netlist::new("mul");
    let a: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("b{i}"))).collect();
    let p = cells::array_multiplier(&mut nl, "m", &a, &b);
    for (i, s) in p.iter().enumerate() {
        nl.mark_output(format!("p{i}"), *s);
    }
    nl
}

/// Times `iters` runs of `f` (after one warm-up) and prints mean ms/iter.
fn bench(label: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{label:40} {per:10.3} ms/iter  ({iters} iters)");
}

fn bench_estimators() {
    let nl = multiplier_netlist(8);
    let mapped = map(&nl, &MapConfig::new(4, MapObjective::Depth)).netlist;
    let cfg = ActivityConfig::uniform();
    bench("estimation/glitch_aware_mult8", 20, || {
        analyze(&mapped, &cfg);
    });
    bench("estimation/chou_roy_mult8", 20, || {
        analyze_zero_delay(&mapped, &cfg, ZeroDelayModel::ChouRoy);
    });
    bench("estimation/najm_mult8", 20, || {
        analyze_zero_delay(&mapped, &cfg, ZeroDelayModel::Najm);
    });
}

fn bench_mapping() {
    let nl = multiplier_netlist(8);
    bench("mapping/cut_enum_mult8_k4", 20, || {
        enumerate_cuts(&nl, &CutConfig::default());
    });
    for obj in [
        MapObjective::Depth,
        MapObjective::AreaFlow,
        MapObjective::GlitchSa,
    ] {
        bench(&format!("mapping/map_mult8/{obj:?}"), 20, || {
            map(&nl, &MapConfig::new(4, obj));
        });
    }
}

fn bench_sa_table_entry() {
    // Cost of one precalculated-table miss: build the Figure 2 partial
    // datapath, map it, and estimate its SA.
    for (a, b) in [(2usize, 2usize), (4, 4), (8, 2)] {
        bench(&format!("sa_table_entry/mult_w6/{a}x{b}"), 5, || {
            hlpower::compute_sa(FuType::Mul, a, b, 6, 4, true);
        });
    }
    bench("sa_table_entry/partial_datapath_build", 20, || {
        partial_datapath(FuType::Mul, 4, 4, 6);
    });
}

/// Scalar vs word-parallel vs multi-word slab simulation throughput on
/// the mapped 16×16 array multiplier — the bit-slicing payoff, reported
/// as simulated transitions per second. All stimulus is pregenerated
/// outside the timed region so every engine pays zero RNG cost and the
/// floors below measure pure engine throughput: the word engine
/// advances 64 lanes per event-wheel pass, and the slab engine advances
/// four 64-lane words per pass with one shared wheel and an
/// autovectorizable straight-line kernel.
///
/// Besides the printed table, the rates land in `BENCH_sim.json` at the
/// workspace root so future PRs can track the throughput curve.
fn bench_simulators() {
    const SLAB_WORDS: usize = 4;
    let nl = multiplier_netlist(16);
    let mapped = map(&nl, &MapConfig::new(4, MapObjective::GlitchSa)).netlist;
    let steps = 500usize;
    let seed = 42u64;
    let inputs = mapped.inputs().len();
    let slab_lanes = SLAB_WORDS * MAX_LANES;

    // Pregenerated stimulus, one buffer per cycle, identical seeding to
    // the `run_random*` drivers (lane L draws from `lane_seed(seed, L)`).
    let scalar_stim: Vec<Vec<bool>> = {
        let mut src = VectorSource::new(seed);
        (0..steps).map(|_| src.next_vector(inputs)).collect()
    };
    let word_stim = |lanes: usize| -> Vec<Vec<u64>> {
        let mut src = WordVectorSource::new(seed, lanes);
        (0..steps)
            .map(|_| {
                let mut w = vec![0u64; inputs];
                src.fill_words(&mut w);
                w
            })
            .collect()
    };
    let lane1_stim = word_stim(1);
    let word64_stim = word_stim(MAX_LANES);
    let slab_stim: Vec<Vec<u64>> = {
        let mut src = SlabVectorSource::new(seed, slab_lanes);
        (0..steps)
            .map(|_| {
                let mut s = vec![0u64; inputs * SLAB_WORDS];
                src.fill_slab(&mut s);
                s
            })
            .collect()
    };

    // Median of three timed repetitions (after one warm-up) so a single
    // scheduler hiccup cannot fail the floor asserts below.
    let rate = |label: &str, f: &dyn Fn() -> u64| -> f64 {
        f(); // warm-up
        let mut rates = [0.0f64; 3];
        let mut transitions = 0;
        for r in &mut rates {
            let start = Instant::now();
            transitions = f();
            *r = transitions as f64 / start.elapsed().as_secs_f64();
        }
        rates.sort_by(|a, b| a.total_cmp(b));
        let per_s = rates[1];
        println!("{label:40} {per_s:14.0} transitions/s  ({transitions} transitions)");
        per_s
    };

    let scalar = rate("simulation/scalar_mult16", &|| {
        let mut sim = CycleSim::new(&mapped);
        for v in &scalar_stim {
            sim.step(v);
        }
        sim.stats().total_transitions
    });
    let lane1 = rate("simulation/lanes1_mult16", &|| {
        let mut sim = WordSim::new(&mapped, 1);
        for w in &lane1_stim {
            sim.step(w);
        }
        sim.stats().total_transitions
    });
    let word64 = rate("simulation/lanes64_mult16", &|| {
        let mut sim = WordSim::new(&mapped, MAX_LANES);
        for w in &word64_stim {
            sim.step(w);
        }
        sim.stats().total_transitions
    });
    let skip_rate = std::cell::Cell::new(0.0f64);
    let slab256 = rate("simulation/lanes256_slab_mult16", &|| {
        let mut sim = SlabSim::<SLAB_WORDS>::new(&mapped, slab_lanes);
        for s in &slab_stim {
            sim.step(s);
        }
        skip_rate.set(sim.activity().skip_rate());
        sim.stats().total_transitions
    });
    let skip_rate = skip_rate.get();

    // The activity gate under a quiescent workload: only the low 64
    // lanes toggle, so three of the four slab words should be skipped
    // wholesale. (Under fully random stimulus above, every word is
    // dirty and the skip rate is ~0 — the gate costs nothing there.)
    let sparse_stim: Vec<Vec<u64>> = word64_stim
        .iter()
        .map(|w| {
            let mut s = vec![0u64; inputs * SLAB_WORDS];
            for (i, &word) in w.iter().enumerate() {
                s[i * SLAB_WORDS] = word;
            }
            s
        })
        .collect();
    let sparse_skip = std::cell::Cell::new(0.0f64);
    rate("simulation/lanes256_slab_sparse_mult16", &|| {
        let mut sim = SlabSim::<SLAB_WORDS>::new(&mapped, slab_lanes);
        for s in &sparse_stim {
            sim.step(s);
        }
        sparse_skip.set(sim.activity().skip_rate());
        sim.stats().total_transitions
    });
    let sparse_skip = sparse_skip.get();
    println!(
        "simulation/slab_sparse_skip_rate         {:13.3}",
        sparse_skip
    );
    println!(
        "simulation/slab_activity_skip_rate       {:13.3}",
        skip_rate
    );

    let word_speedup = word64 / scalar;
    let slab_speedup = slab256 / word64;
    println!(
        "simulation/word64_vs_scalar_speedup      {word_speedup:13.1}x  (acceptance floor: 8x)"
    );
    println!(
        "simulation/slab256_vs_word64_speedup     {slab_speedup:13.1}x  (acceptance floor: 2x)"
    );

    // Machine-readable trajectory for future PRs, at the workspace root.
    let json = format!(
        "{{\n  \"benchmark\": \"mapped_mult16\",\n  \"steps\": {steps},\n  \"seed\": {seed},\n  \
         \"transitions_per_sec\": {{\n    \"scalar\": {scalar:.0},\n    \"lanes1\": {lane1:.0},\n    \
         \"lanes64\": {word64:.0},\n    \"lanes256_slab\": {slab256:.0}\n  }},\n  \
         \"slab_activity_skip_rate\": {skip_rate:.4},\n  \
         \"slab_sparse_skip_rate\": {sparse_skip:.4},\n  \
         \"word64_vs_scalar_speedup\": {word_speedup:.2},\n  \
         \"slab256_vs_word64_speedup\": {slab_speedup:.2},\n  \
         \"slab256_vs_word64_floor\": 2.0\n}}\n"
    );
    let out = concat!(env!("CARGO_MANIFEST_DIR"), "/../../BENCH_sim.json");
    std::fs::write(out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("simulation/trajectory written to         {out}");

    assert!(
        word_speedup >= 8.0,
        "word-parallel simulation regressed below the 8x acceptance floor: {word_speedup:.1}x"
    );
    assert!(
        slab_speedup >= 2.0,
        "slab simulation regressed below the 2x acceptance floor vs the \
         64-lane word engine: {slab_speedup:.1}x"
    );
}

/// Cold-vs-warm artifact store on one full benchmark × binder job: the
/// cold run computes schedule → bind → elaborate → map → simulate and
/// persists every artifact; warm runs rebuild the same `FlowResult`
/// from the store (binding still executes — it is cheap once the SA
/// shard is loaded). The payoff the store exists for, reported as a
/// speedup with an asserted floor.
fn bench_store() {
    use hlpower::{ArtifactStore, Binder, FlowConfig, Pipeline};
    use std::sync::Arc;

    let dir = std::env::temp_dir().join(format!("hlpower-bench-store-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    let p = cdfg::profile("wang").unwrap();
    let suite = vec![(
        cdfg::generate(p, p.seed),
        hlpower::paper_constraint("wang").unwrap(),
    )];
    let binders = [Binder::HlPower { alpha: 0.5 }];
    let cfg = FlowConfig {
        width: 8,
        sa_width: 6,
        sim_cycles: 300,
        lanes: 64,
        ..FlowConfig::default()
    };

    let cold_start = Instant::now();
    let store = Arc::new(ArtifactStore::open(&dir).unwrap());
    Pipeline::with_store(cfg.clone(), store).run_matrix(&suite, &binders, 1);
    let cold = cold_start.elapsed().as_secs_f64();

    // Median of three warm runs, each through a fresh pipeline + store
    // handle (as a new process would be).
    let mut warms = [0.0f64; 3];
    for w in &mut warms {
        let start = Instant::now();
        let store = Arc::new(ArtifactStore::open(&dir).unwrap());
        let pipeline = Pipeline::with_store(cfg.clone(), store);
        pipeline.run_matrix(&suite, &binders, 1);
        let stats = pipeline.stats();
        assert_eq!(stats.stages.mappings, 0, "warm run must not map");
        assert_eq!(stats.stages.simulations, 0, "warm run must not simulate");
        *w = start.elapsed().as_secs_f64();
    }
    warms.sort_by(|a, b| a.total_cmp(b));
    let warm = warms[1];
    let speedup = cold / warm;
    println!(
        "store/cold_wang_full_job                 {:10.3} ms",
        cold * 1e3
    );
    println!(
        "store/warm_wang_full_job                 {:10.3} ms",
        warm * 1e3
    );
    println!("store/warm_vs_cold_speedup               {speedup:13.1}x  (acceptance floor: 2x)");
    let _ = std::fs::remove_dir_all(&dir);
    assert!(
        speedup >= 2.0,
        "warm artifact-store rerun regressed below the 2x acceptance floor: {speedup:.1}x"
    );
}

fn main() {
    bench_estimators();
    bench_mapping();
    bench_sa_table_entry();
    bench_simulators();
    bench_store();
}
