//! Benchmarks for the binding algorithms — the runtime the paper reports
//! in Table 2, plus the precalculated-vs-dynamic SA ablation of
//! Section 5.2.2 ("the same results ... but with a much shorter run
//! time").
//!
//! Criterion is unavailable offline, so these are plain `harness = false`
//! timers: each subject runs for a fixed iteration budget and reports
//! mean wall-clock per iteration.
//!
//! ```text
//! cargo bench -p hlpower-bench --bench binding
//! ```

use cdfg::ResourceConstraint;
use hlpower::flow::{prepare, sa_table_for};
use hlpower::{bind_hlpower, bind_lopass, Binder, FlowConfig, HlPowerConfig, SaMode, SaTable};
use std::time::Instant;

fn flow_cfg() -> FlowConfig {
    FlowConfig {
        width: 8,
        sa_width: 6,
        ..FlowConfig::default()
    }
}

/// Times `iters` runs of `f` (after one warm-up) and prints mean ms/iter.
fn bench(label: &str, iters: u32, mut f: impl FnMut()) {
    f();
    let start = Instant::now();
    for _ in 0..iters {
        f();
    }
    let per = start.elapsed().as_secs_f64() * 1e3 / iters as f64;
    println!("{label:40} {per:10.3} ms/iter  ({iters} iters)");
}

fn bench_binders() {
    let cfg = flow_cfg();
    for name in ["pr", "wang", "honda", "dir"] {
        let p = cdfg::profile(name).unwrap();
        let g = cdfg::generate(p, p.seed);
        let rc = hlpower::paper_constraint(name).unwrap();
        let (sched, rb) = prepare(&g, &rc, &cfg);

        // Warm table shared across iterations, mirroring the paper's
        // precalculated-table methodology.
        let mut table = sa_table_for(&cfg, Binder::HlPower { alpha: 0.5 });
        let hl = HlPowerConfig::default();
        bench(&format!("binding/hlpower_a05/{name}"), 10, || {
            bind_hlpower(&g, &sched, &rb, &rc, &mut table, &hl);
        });
        bench(&format!("binding/lopass_greedy/{name}"), 10, || {
            bind_lopass(&g, &sched, &rb, &rc);
        });
    }
}

fn bench_sa_modes() {
    // The paper's ablation: dynamic SA estimation vs the precalculated
    // hash table, measured on the same binding run.
    let cfg = flow_cfg();
    let p = cdfg::profile("pr").unwrap();
    let g = cdfg::generate(p, p.seed);
    let rc = ResourceConstraint::new(2, 2);
    let (sched, rb) = prepare(&g, &rc, &cfg);
    let hl = HlPowerConfig::default();

    let mut pre = sa_table_for(&cfg, Binder::HlPower { alpha: 0.5 });
    bench("sa_mode/precalculated/pr", 10, || {
        bind_hlpower(&g, &sched, &rb, &rc, &mut pre, &hl);
    });
    bench("sa_mode/dynamic/pr", 2, || {
        let mut dynamic = SaTable::new(cfg.sa_width, cfg.k).with_mode(SaMode::Dynamic);
        bind_hlpower(&g, &sched, &rb, &rc, &mut dynamic, &hl);
    });
}

fn main() {
    bench_binders();
    bench_sa_modes();
}
