//! Criterion benchmarks for the binding algorithms — the runtime the
//! paper reports in Table 2, plus the precalculated-vs-dynamic SA ablation
//! of Section 5.2.2 ("the same results ... but with a much shorter run
//! time").

use cdfg::ResourceConstraint;
use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use hlpower::flow::{prepare, sa_table_for};
use hlpower::{
    bind_hlpower, bind_lopass, Binder, FlowConfig, HlPowerConfig, SaMode, SaTable,
};

fn flow_cfg() -> FlowConfig {
    FlowConfig { width: 8, sa_width: 6, ..FlowConfig::default() }
}

fn bench_binders(c: &mut Criterion) {
    let cfg = flow_cfg();
    let mut group = c.benchmark_group("binding");
    for name in ["pr", "wang", "honda", "dir"] {
        let p = cdfg::profile(name).unwrap();
        let g = cdfg::generate(p, p.seed);
        let rc = hlpower::paper_constraint(name).unwrap();
        let (sched, rb) = prepare(&g, &rc, &cfg);

        group.bench_with_input(BenchmarkId::new("hlpower_a05", name), &g, |b, g| {
            // Warm table shared across iterations, mirroring the paper's
            // precalculated-table methodology.
            let mut table = sa_table_for(&cfg, Binder::HlPower { alpha: 0.5 });
            let hl = HlPowerConfig::default();
            b.iter(|| bind_hlpower(g, &sched, &rb, &rc, &mut table, &hl));
        });
        group.bench_with_input(BenchmarkId::new("lopass_greedy", name), &g, |b, g| {
            b.iter(|| bind_lopass(g, &sched, &rb, &rc));
        });
    }
    group.finish();
}

fn bench_sa_modes(c: &mut Criterion) {
    // The paper's ablation: dynamic SA estimation vs the precalculated
    // hash table, measured on the same binding run.
    let cfg = flow_cfg();
    let p = cdfg::profile("pr").unwrap();
    let g = cdfg::generate(p, p.seed);
    let rc = ResourceConstraint::new(2, 2);
    let (sched, rb) = prepare(&g, &rc, &cfg);
    let hl = HlPowerConfig::default();

    let mut group = c.benchmark_group("sa_mode");
    group.sample_size(10);
    group.bench_function("precalculated_warm", |b| {
        let mut table = SaTable::new(cfg.sa_width, cfg.k);
        bind_hlpower(&g, &sched, &rb, &rc, &mut table, &hl); // warm the cache
        b.iter(|| bind_hlpower(&g, &sched, &rb, &rc, &mut table, &hl));
    });
    group.bench_function("precalculated_cold", |b| {
        b.iter(|| {
            let mut table = SaTable::new(cfg.sa_width, cfg.k);
            bind_hlpower(&g, &sched, &rb, &rc, &mut table, &hl)
        });
    });
    group.bench_function("dynamic", |b| {
        b.iter(|| {
            let mut table = SaTable::new(cfg.sa_width, cfg.k).with_mode(SaMode::Dynamic);
            bind_hlpower(&g, &sched, &rb, &rc, &mut table, &hl)
        });
    });
    group.finish();
}

criterion_group!(benches, bench_binders, bench_sa_modes);
criterion_main!(benches);
