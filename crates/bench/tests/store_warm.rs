//! Acceptance tests for the artifact store at the binary level:
//!
//! * a warm `all_experiments --store` rerun produces **byte-identical**
//!   stdout to the cold run while executing **zero** schedule / map /
//!   simulate stages (everything is served from the store);
//! * `--shard 0/2` + `--shard 1/2` + a store merge reproduce the
//!   unsharded run byte for byte, again with zero warm-stage executions.

use hlpower::ArtifactStore;
use std::path::PathBuf;
use std::process::{Command, Output};
use std::sync::atomic::{AtomicU32, Ordering};

fn temp_dir(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    let dir = std::env::temp_dir().join(format!(
        "hlpower-bench-store-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

/// Runs `all_experiments` with the common fast subset plus `extra`.
fn all_experiments(extra: &[&str]) -> Output {
    let out = Command::new(env!("CARGO_BIN_EXE_all_experiments"))
        .args(["--fast", "--bench", "pr", "--bench", "wang", "--jobs", "2"])
        .args(extra)
        .output()
        .expect("spawn all_experiments");
    assert!(
        out.status.success(),
        "all_experiments {extra:?} failed:\n{}",
        String::from_utf8_lossy(&out.stderr)
    );
    out
}

fn stderr_of(out: &Output) -> String {
    String::from_utf8_lossy(&out.stderr).into_owned()
}

#[test]
fn warm_store_rerun_is_byte_identical_with_zero_stage_executions() {
    let store = temp_dir("warm");
    let store_arg = store.to_str().unwrap();
    let cold = all_experiments(&["--store", store_arg]);
    let warm = all_experiments(&["--store", store_arg]);
    assert_eq!(
        cold.stdout, warm.stdout,
        "cold and warm store runs must print byte-identical reports"
    );
    let cold_err = stderr_of(&cold);
    assert!(
        cold_err.contains("stages: 2 schedules"),
        "cold run computes the front end once per benchmark:\n{cold_err}"
    );
    let warm_err = stderr_of(&warm);
    assert!(
        warm_err
            .contains("stages: 0 schedules, 0 regbinds, 10 fu-binds, 0 mappings, 0 simulations"),
        "warm run must execute zero schedule/map/simulate stages:\n{warm_err}"
    );
    assert!(
        warm_err.contains("store: prepared 2/2, netlists 10/10, sims 10/10"),
        "warm run must serve every lookup from the store:\n{warm_err}"
    );
}

#[test]
fn sharded_stores_merge_to_the_unsharded_report() {
    let unsharded = all_experiments(&[]);

    let (dir0, dir1, merged_dir) = (temp_dir("shard0"), temp_dir("shard1"), temp_dir("merged"));
    let shard0 = all_experiments(&["--store", dir0.to_str().unwrap(), "--shard", "0/2"]);
    let shard1 = all_experiments(&["--store", dir1.to_str().unwrap(), "--shard", "1/2"]);
    for (out, which) in [(&shard0, "0/2"), (&shard1, "1/2")] {
        let err = stderr_of(out);
        assert!(
            err.contains(&format!("shard {which}: warmed 5 of 10 job(s)")),
            "shard {which} must own exactly half of the 2x5 matrix:\n{err}"
        );
    }

    // The fan-in step (what `hlp merge` runs): union the shard stores.
    let merged = ArtifactStore::open(&merged_dir).unwrap();
    let r0 = merged
        .merge_from(&ArtifactStore::open(&dir0).unwrap())
        .unwrap();
    let r1 = merged
        .merge_from(&ArtifactStore::open(&dir1).unwrap())
        .unwrap();
    assert_eq!(r0.conflicting + r1.conflicting, 0, "shards cannot conflict");
    assert_eq!(
        r0.sa.conflicting + r1.sa.conflicting,
        0,
        "deterministic SA training cannot conflict across shards"
    );

    let combined = all_experiments(&["--store", merged_dir.to_str().unwrap()]);
    assert_eq!(
        unsharded.stdout, combined.stdout,
        "shard 0/2 + shard 1/2 + merge must reproduce the unsharded report byte for byte"
    );
    let err = stderr_of(&combined);
    assert!(
        err.contains("0 mappings, 0 simulations"),
        "the merged store must cover every job:\n{err}"
    );
}
