//! Shared harness code for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper on top of the typed service API ([`hlpower::api`]): the shared
//! [`Args`] parser turns the command line into [`JobRequest`] values,
//! [`Args::run_matrix`] executes the benchmark × binder request matrix
//! through one [`Service`] (which owns the `--store` hot artifact store
//! and a pipeline per flow configuration), and the text-table rendering
//! plus the paper's reference numbers for side-by-side reporting live
//! here. Binaries that need pipeline-level access for hand-driven
//! ablations reach it through [`Service::pipeline_for`], so every
//! execution path shares the same store and accounting.

#![warn(missing_docs)]

use cdfg::{Cdfg, ResourceConstraint};
use hlpower::api::{JobRequest, Service};
use hlpower::{
    paper_constraint, ArtifactStore, Binder, FlowConfig, FlowResult, Pipeline, Shard, StoreFormat,
};
use std::sync::Arc;

/// Default word-parallel lane count of the experiment binaries. The
/// bit-sliced engine makes a 64× vector budget nearly free, so the
/// binaries simulate at full width unless `--paper-exact` restores the
/// paper's single-stream tables.
pub const DEFAULT_LANES: usize = 64;

/// Command-line options shared by the experiment binaries.
///
/// Flags: `--width N`, `--cycles N`, `--sa-width N`, `--seed N` (sets
/// both the simulation and the register-port seed), `--lanes N`
/// (word-parallel simulation lanes, 1..=512 — above 64 the multi-word
/// slab engine packs `lanes/64` words per node; `0` selects the scalar
/// reference engine; default [`DEFAULT_LANES`]), `--paper-exact`
/// (restore the paper's `--lanes 1` single-stream tables),
/// `--bench NAME` (repeatable), `--binder SPEC` (repeatable, see
/// [`Binder::parse`]), `--jobs N` (parallel fan-out width), `--fast`
/// (width 8, 300 cycles — for smoke runs), `--store SPEC` (persistent
/// artifact store: prepared schedules, mapped netlists, simulation
/// summaries, and the SA table are cached across runs; a directory, or
/// `remote:ADDR` for the shared hot store of an `hlp serve` daemon),
/// `--store-format binary|text` (encoding for new store writes;
/// binary `hlpbin` is the default, readers sniff either),
/// `--shard i/N` (run only this worker's slice of the benchmark ×
/// binder matrix into the store; requires `--store`, combine local
/// shard stores with `hlp merge` — sharding straight into one
/// `remote:` store needs no merge step).
///
/// Malformed values report the offending flag and value on stderr and
/// exit 2 (the usage exit code); runtime failures exit 1.
#[derive(Clone, Debug)]
pub struct Args {
    /// Flow configuration assembled from the flags.
    pub flow: FlowConfig,
    /// Benchmark name filter (empty = whole suite).
    pub only: Vec<String>,
    /// Binder filter (empty = the binary's default set).
    pub binders: Vec<Binder>,
    /// Worker threads for the request fan-out.
    pub jobs: usize,
    /// Artifact-store directory (`--store`).
    pub store: Option<String>,
    /// Encoding for new store writes (`--store-format`).
    pub store_format: StoreFormat,
    /// This worker's slice of the job matrix (`--shard`).
    pub shard: Shard,
}

/// Reports a malformed option value with the flag name and offending
/// value, then exits with the usage code (2).
fn bad_value(flag: &str, value: &str, expected: &str) -> ! {
    eprintln!("invalid value `{value}` for {flag}: expected {expected}");
    usage()
}

fn parsed<T: std::str::FromStr>(flag: &str, value: &str, expected: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| bad_value(flag, value, expected))
}

impl Args {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Args {
        let mut flow = FlowConfig {
            lanes: DEFAULT_LANES,
            ..FlowConfig::default()
        };
        let mut only = Vec::new();
        let mut binders = Vec::new();
        let mut jobs = default_jobs();
        let mut store = None;
        let mut store_format = StoreFormat::default();
        let mut shard = Shard::full();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let flag = argv[i].clone();
            let take_value = |i: &mut usize| -> String {
                *i += 1;
                argv.get(*i)
                    .unwrap_or_else(|| {
                        eprintln!("missing value for {flag}");
                        usage()
                    })
                    .clone()
            };
            match flag.as_str() {
                "--width" => {
                    let v = take_value(&mut i);
                    flow.width = parsed(&flag, &v, "an integer in 1..=64");
                    if flow.width == 0 || flow.width > 64 {
                        // Word-level buses are u64.
                        bad_value(&flag, &v, "an integer in 1..=64");
                    }
                }
                "--sa-width" => flow.sa_width = parsed(&flag, &take_value(&mut i), "an integer"),
                "--cycles" => flow.sim_cycles = parsed(&flag, &take_value(&mut i), "an integer"),
                "--lanes" => {
                    // 0 = scalar reference engine, 1..=64 = word engine,
                    // 65..=512 = multi-word slab engine.
                    let v = take_value(&mut i);
                    flow.lanes = parsed(&flag, &v, "a lane count in 0..=512");
                    if flow.lanes > gatesim::MAX_SLAB_LANES {
                        bad_value(&flag, &v, "a lane count in 0..=512");
                    }
                }
                "--paper-exact" => {
                    // The paper's tables: one vector stream, byte-identical
                    // to the scalar reference engine. (Position-sensitive
                    // with --lanes: the later flag wins.)
                    flow.lanes = 1;
                }
                "--seed" => {
                    // One seed flag controls the whole stochastic setup:
                    // simulation vectors *and* the register binding's
                    // random port assignment.
                    let seed = parsed(&flag, &take_value(&mut i), "an integer");
                    flow.sim_seed = seed;
                    flow.port_seed = seed;
                }
                "--jobs" => {
                    let v = take_value(&mut i);
                    jobs = parsed(&flag, &v, "a positive integer");
                    if jobs == 0 {
                        bad_value(&flag, &v, "a positive integer");
                    }
                }
                "--binder" => {
                    let spec = take_value(&mut i);
                    binders.push(Binder::parse(&spec).unwrap_or_else(|| {
                        bad_value(
                            &flag,
                            &spec,
                            "lopass | lopass-ic | lopass-sa | hlpower[:ALPHA] | hlpower-zd[:ALPHA]",
                        )
                    }));
                }
                "--bench" => only.push(take_value(&mut i)),
                "--store" => store = Some(take_value(&mut i)),
                "--store-format" => {
                    let v = take_value(&mut i);
                    store_format = StoreFormat::parse(&v)
                        .unwrap_or_else(|| bad_value(&flag, &v, "binary | text"));
                }
                "--shard" => {
                    let spec = take_value(&mut i);
                    shard = Shard::parse(&spec)
                        .unwrap_or_else(|| bad_value(&flag, &spec, "i/N with i < N"));
                }
                "--fast" => {
                    flow.width = 8;
                    flow.sa_width = 6;
                    flow.sim_cycles = 300;
                }
                "--help" | "-h" => usage(),
                other => {
                    eprintln!("unknown flag `{other}`");
                    usage()
                }
            }
            i += 1;
        }
        if !shard.is_full() && store.is_none() {
            eprintln!("--shard produces no report; it needs --store DIR to warm");
            usage();
        }
        Args {
            flow,
            only,
            binders,
            jobs,
            store,
            store_format,
            shard,
        }
    }

    /// The benchmark suite (optionally filtered), paired with the paper's
    /// Table 2 resource constraints.
    pub fn suite(&self) -> Vec<(Cdfg, ResourceConstraint)> {
        cdfg::PROFILES
            .iter()
            .filter(|p| self.only.is_empty() || self.only.iter().any(|n| n == p.name))
            .map(|p| {
                let g = cdfg::generate(p, p.seed);
                let rc = paper_constraint(p.name).expect("suite constraint");
                (g, rc)
            })
            .collect()
    }

    /// The `--binder` selection, or `default` when none was given.
    pub fn binders_or(&self, default: &[Binder]) -> Vec<Binder> {
        if self.binders.is_empty() {
            default.to_vec()
        } else {
            self.binders.clone()
        }
    }

    /// The [`JobRequest`] for one suite benchmark under these flags.
    pub fn request_for(&self, bench: &str, rc: &ResourceConstraint, binder: Binder) -> JobRequest {
        let mut req = JobRequest::suite(bench)
            .width(self.flow.width)
            .sa_width(self.flow.sa_width)
            .constraint(rc.addsub, rc.mul)
            .binder(binder)
            .cycles(self.flow.sim_cycles)
            .lanes(self.flow.lanes)
            .sa_mode(self.flow.sa_mode)
            .fsm(matches!(self.flow.control, hlpower::ControlStyle::Fsm));
        req.sim_seed = self.flow.sim_seed;
        req.port_seed = self.flow.port_seed;
        req
    }

    /// The row-major `suite × binders` request matrix — what
    /// [`Args::run_matrix`] executes, and the job order `--shard`
    /// slices.
    pub fn requests(
        &self,
        suite: &[(Cdfg, ResourceConstraint)],
        binders: &[Binder],
    ) -> Vec<JobRequest> {
        suite
            .iter()
            .flat_map(|(g, rc)| {
                binders
                    .iter()
                    .map(move |binder| self.request_for(g.name(), rc, *binder))
            })
            .collect()
    }

    /// Builds the [`Service`] for these flags: the flag-derived flow
    /// configuration as the template, attached to the `--store` artifact
    /// store when one was given — a directory, or `remote:ADDR` for the
    /// hot store of an `hlp serve` daemon (exiting with a message if the
    /// directory cannot be created or no daemon answers).
    pub fn service(&self) -> Service {
        let service = Service::new().with_template(self.flow.clone());
        match &self.store {
            Some(spec) => {
                let store =
                    ArtifactStore::open_spec_with(spec, self.store_format).unwrap_or_else(|e| {
                        eprintln!("cannot open artifact store `{spec}`: {e}");
                        std::process::exit(1);
                    });
                service.with_store(Arc::new(store))
            }
            None => service,
        }
    }

    /// Builds the [`Service`] for these flags and executes the benchmark
    /// × binder request matrix through it over `--jobs` workers, with
    /// progress on stderr. Returns the service (for stage counters /
    /// pipeline access) and `results[bench][binder]`.
    ///
    /// **Sharded invocations terminate here.** With `--shard i/N` (N > 1)
    /// the run is a store-warming worker: it executes only its slice of
    /// the request matrix into the store, prints a summary to stderr, and
    /// exits the process — no report is rendered, because the matrix is
    /// partial. Combine the shard stores with `hlp merge` and rerun
    /// unsharded against the merged store for the full (all-hits) report.
    pub fn run_matrix(
        &self,
        suite: &[(Cdfg, ResourceConstraint)],
        binders: &[Binder],
    ) -> (Service, Vec<Vec<FlowResult>>) {
        let service = self.service();
        let requests = self.requests(suite, binders);
        if !self.shard.is_full() {
            let owned: Vec<JobRequest> = requests
                .iter()
                .enumerate()
                .filter(|(i, _)| self.shard.owns(*i))
                .map(|(_, r)| r.clone())
                .collect();
            let reports = service.execute_all(&owned, self.jobs);
            let ran = reports.iter().filter(|r| r.is_ok()).count();
            for report in &reports {
                if let Err(e) = report {
                    eprintln!("  job failed: {e}");
                }
            }
            report_service_stats(&service);
            eprintln!(
                "  shard {}: warmed {ran} of {} job(s) into `{}`; no report (merge \
                 shard stores with `hlp merge`, then rerun unsharded)",
                self.shard,
                requests.len(),
                self.store.as_deref().unwrap_or("?"),
            );
            std::process::exit(0);
        }
        eprintln!(
            "  fan-out: {} benchmark(s) x {} binder(s) on {} job(s)",
            suite.len(),
            binders.len(),
            self.jobs
        );
        let mut reports = service.execute_all(&requests, self.jobs).into_iter();
        let results = suite
            .iter()
            .map(|_| {
                binders
                    .iter()
                    .map(|_| {
                        let report = reports.next().expect("one report per request");
                        report
                            .unwrap_or_else(|e| {
                                eprintln!("job failed: {e}");
                                std::process::exit(1);
                            })
                            .result
                    })
                    .collect()
            })
            .collect();
        report_service_stats(&service);
        (service, results)
    }
}

/// Prints a service's stage-execution and store hit/miss counters to
/// stderr (the observable caching evidence; stdout stays reserved for
/// deterministic report output).
fn report_service_stats(service: &Service) {
    let s = service.stats();
    eprintln!("  stages: {}", s.stages);
    if service.store().is_some() {
        eprintln!("  store: {}", s.store);
    }
    if s.codec.total_ns() > 0 {
        eprintln!("  codec: {}", s.codec);
    }
}

/// Fans `suite × binders` out on an explicit pipeline (obtained from
/// [`Service::pipeline_for`] for configurations beyond the request
/// vocabulary — custom resource libraries, controller styles), with
/// progress on stderr.
pub fn run_on(
    pipeline: &Pipeline,
    suite: &[(Cdfg, ResourceConstraint)],
    binders: &[Binder],
    jobs: usize,
) -> Vec<Vec<FlowResult>> {
    eprintln!(
        "  fan-out: {} benchmark(s) x {} binder(s) on {} job(s)",
        suite.len(),
        binders.len(),
        jobs
    );
    let results = pipeline.run_matrix(suite, binders, jobs);
    let s = pipeline.stats();
    eprintln!("  stages: {}", s.stages);
    if pipeline.store().is_some() {
        eprintln!("  store: {}", s.store);
    }
    if s.codec.total_ns() > 0 {
        eprintln!("  codec: {}", s.codec);
    }
    results
}

/// Exits with an error if `--shard` was passed to a binary that drives
/// pipelines by hand instead of through [`Args::run_matrix`] (accepting
/// the flag and silently running the whole matrix would defeat the
/// point of sharding).
pub fn reject_shard_flag(args: &Args, binary: &str) {
    if !args.shard.is_full() {
        eprintln!(
            "{binary}: this binary drives several flow configurations by hand and does not \
             support --shard (shard the matrix binaries, e.g. all_experiments, instead)"
        );
        std::process::exit(2);
    }
}

/// Exits with an error if `--binder` was passed to a binary whose
/// binder set is fixed by the table it reproduces (accepting the flag
/// and silently ignoring it would mislabel the results).
pub fn reject_binder_flag(args: &Args, binary: &str) {
    if !args.binders.is_empty() {
        eprintln!(
            "{binary}: the binder set is fixed by the paper table this binary reproduces; \
             --binder is not supported (use `binders` or `table2` for custom binder sets)"
        );
        std::process::exit(2);
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

fn usage() -> ! {
    eprintln!(
        "usage: <bin> [--width N] [--sa-width N] [--cycles N] [--seed N] [--lanes N] \
         [--paper-exact] [--bench NAME]... [--binder SPEC[:ALPHA]]... [--jobs N] [--fast] \
         [--store DIR] [--store-format binary|text] [--shard i/N]"
    );
    std::process::exit(2)
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Percentage change from `from` to `to` (negative = reduction).
pub fn pct_change(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        0.0
    } else {
        (to - from) / from * 100.0
    }
}

/// One Table 3 reference row: `(benchmark, dynamic power mW
/// LOPASS/HLPower, clock ns LOPASS/HLPower, LUTs LOPASS/HLPower)`.
pub type PaperTable3Row = (&'static str, (f64, f64), (f64, f64), (u32, u32));

/// The paper's Table 3 reference numbers for side-by-side reporting in
/// EXPERIMENTS.md.
pub const PAPER_TABLE3: [PaperTable3Row; 7] = [
    ("chem", (1602.3, 1468.6), (26.0, 27.5), (9806, 9613)),
    ("dir", (709.1, 405.8), (23.8, 24.2), (4527, 3453)),
    ("honda", (658.7, 534.1), (23.5, 23.2), (3352, 3057)),
    ("mcm", (351.3, 208.7), (24.1, 24.2), (3274, 2548)),
    ("pr", (232.7, 192.9), (20.9, 21.7), (1714, 1732)),
    ("steam", (729.6, 690.6), (24.4, 23.6), (5121, 4469)),
    ("wang", (161.5, 158.5), (20.5, 19.9), (1697, 1775)),
];

/// One Table 4 reference row: `(benchmark, LOPASS mean/var, α=1 mean/var,
/// α=0.5 mean/var, #muxes)`.
pub type PaperTable4Row = (&'static str, (f64, f64), (f64, f64), (f64, f64), u32);

/// The paper's Table 4 reference numbers.
pub const PAPER_TABLE4: [PaperTable4Row; 7] = [
    ("chem", (7.4, 16.1), (4.6, 9.8), (2.4, 5.3), 16),
    ("dir", (5.4, 12.2), (4.0, 11.2), (4.2, 3.8), 5),
    ("honda", (3.1, 11.1), (3.9, 6.4), (3.0, 6.3), 8),
    ("mcm", (1.0, 0.3), (1.8, 0.5), (0.5, 0.3), 6),
    ("pr", (0.8, 0.2), (0.3, 0.2), (0.8, 0.2), 4),
    ("steam", (8.1, 56.1), (6.8, 29.9), (5.8, 26.7), 8),
    ("wang", (1.3, 0.7), (0.8, 0.2), (1.8, 0.7), 4),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn pct_change_signs() {
        assert!((pct_change(100.0, 81.0) + 19.0).abs() < 1e-12);
        assert!((pct_change(100.0, 103.0) - 3.0).abs() < 1e-12);
        assert_eq!(pct_change(0.0, 5.0), 0.0);
    }

    #[test]
    fn paper_reference_data_covers_suite() {
        for p in cdfg::PROFILES {
            assert!(PAPER_TABLE3.iter().any(|(n, ..)| *n == p.name));
            assert!(PAPER_TABLE4.iter().any(|(n, ..)| *n == p.name));
        }
    }

    #[test]
    fn binder_specs_parse() {
        assert_eq!(Binder::parse("lopass"), Some(Binder::Lopass));
        assert_eq!(Binder::parse("lopass-ic"), Some(Binder::LopassInterconnect));
        assert_eq!(Binder::parse("lopass-sa"), Some(Binder::LopassAnnealed));
        assert_eq!(
            Binder::parse("hlpower"),
            Some(Binder::HlPower { alpha: 0.5 })
        );
        assert_eq!(
            Binder::parse("hlpower:1.0"),
            Some(Binder::HlPower { alpha: 1.0 })
        );
        assert_eq!(
            Binder::parse("hlpower-zd:0.25"),
            Some(Binder::HlPowerZeroDelay { alpha: 0.25 })
        );
        assert_eq!(Binder::parse("nope"), None);
        assert_eq!(Binder::parse("hlpower:x"), None);
        // The LOPASS variants take no alpha; rejecting the suffix beats
        // silently ignoring it.
        assert_eq!(Binder::parse("lopass:0.5"), None);
        // spec() is the exact inverse (the request-codec contract).
        for b in [
            Binder::Lopass,
            Binder::LopassInterconnect,
            Binder::LopassAnnealed,
            Binder::HlPower { alpha: 0.3 },
            Binder::HlPowerZeroDelay { alpha: 1.0 },
        ] {
            assert_eq!(Binder::parse(&b.spec()), Some(b));
        }
    }

    #[test]
    fn request_matrix_is_row_major_and_flag_faithful() {
        let args = Args {
            flow: FlowConfig {
                width: 8,
                sa_width: 6,
                sim_cycles: 300,
                lanes: 16,
                sim_seed: 7,
                port_seed: 7,
                ..FlowConfig::default()
            },
            only: vec![],
            binders: vec![],
            jobs: 1,
            store: None,
            store_format: StoreFormat::default(),
            shard: Shard::full(),
        };
        let suite: Vec<(Cdfg, ResourceConstraint)> = ["pr", "wang"]
            .iter()
            .map(|n| {
                let p = cdfg::profile(n).unwrap();
                (cdfg::generate(p, p.seed), paper_constraint(n).unwrap())
            })
            .collect();
        let binders = [Binder::Lopass, Binder::HlPower { alpha: 0.5 }];
        let reqs = args.requests(&suite, &binders);
        assert_eq!(reqs.len(), 4);
        assert_eq!(reqs[0].source, hlpower::JobSource::Suite("pr".to_string()));
        assert_eq!(reqs[1].binder, Binder::HlPower { alpha: 0.5 });
        assert_eq!(
            reqs[2].source,
            hlpower::JobSource::Suite("wang".to_string())
        );
        for r in &reqs {
            assert_eq!(r.width, 8);
            assert_eq!(r.cycles, 300);
            assert_eq!(r.lanes, 16);
            assert_eq!(r.sim_seed, 7);
            assert_eq!(r.constraint, Some((2, 2)), "paper constraint captured");
            // Every request survives the wire byte-exactly, so a script
            // can replay the exact matrix against `hlp serve`.
            assert_eq!(JobRequest::parse_line(&r.to_line()).unwrap(), *r);
        }
    }
}
