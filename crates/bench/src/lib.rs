//! Shared harness code for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper; this library holds the common pieces: benchmark suite loading,
//! simple CLI parsing, text-table rendering, and the paper's reference
//! numbers for side-by-side reporting.

#![warn(missing_docs)]

use cdfg::{Cdfg, ResourceConstraint};
use hlpower::{paper_constraint, Binder, FlowConfig, FlowResult};

/// Command-line options shared by the experiment binaries.
///
/// Flags: `--width N`, `--cycles N`, `--sa-width N`, `--bench NAME`
/// (repeatable), `--fast` (width 8, 300 cycles — for smoke runs).
#[derive(Clone, Debug)]
pub struct Args {
    /// Flow configuration assembled from the flags.
    pub flow: FlowConfig,
    /// Benchmark name filter (empty = whole suite).
    pub only: Vec<String>,
}

impl Args {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Args {
        let mut flow = FlowConfig::default();
        let mut only = Vec::new();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let take_value = |i: &mut usize| -> String {
                *i += 1;
                argv.get(*i).unwrap_or_else(|| usage()).clone()
            };
            match argv[i].as_str() {
                "--width" => flow.width = take_value(&mut i).parse().unwrap_or_else(|_| usage()),
                "--sa-width" => {
                    flow.sa_width = take_value(&mut i).parse().unwrap_or_else(|_| usage())
                }
                "--cycles" => {
                    flow.sim_cycles = take_value(&mut i).parse().unwrap_or_else(|_| usage())
                }
                "--seed" => {
                    flow.sim_seed = take_value(&mut i).parse().unwrap_or_else(|_| usage())
                }
                "--bench" => only.push(take_value(&mut i)),
                "--fast" => {
                    flow.width = 8;
                    flow.sa_width = 6;
                    flow.sim_cycles = 300;
                }
                "--help" | "-h" => usage(),
                other => {
                    eprintln!("unknown flag `{other}`");
                    usage()
                }
            }
            i += 1;
        }
        Args { flow, only }
    }

    /// The benchmark suite (optionally filtered), paired with the paper's
    /// Table 2 resource constraints.
    pub fn suite(&self) -> Vec<(Cdfg, ResourceConstraint)> {
        cdfg::PROFILES
            .iter()
            .filter(|p| self.only.is_empty() || self.only.iter().any(|n| n == p.name))
            .map(|p| {
                let g = cdfg::generate(p, p.seed);
                let rc = paper_constraint(p.name).expect("suite constraint");
                (g, rc)
            })
            .collect()
    }
}

fn usage() -> ! {
    eprintln!(
        "usage: <bin> [--width N] [--sa-width N] [--cycles N] [--seed N] [--bench NAME]... [--fast]"
    );
    std::process::exit(2)
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Percentage change from `from` to `to` (negative = reduction).
pub fn pct_change(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        0.0
    } else {
        (to - from) / from * 100.0
    }
}

/// Runs one benchmark with one binder, printing progress to stderr.
pub fn run_one(g: &Cdfg, rc: &ResourceConstraint, binder: Binder, flow: &FlowConfig) -> FlowResult {
    eprintln!("  running {} / {} ...", g.name(), binder.label());
    hlpower::run_benchmark(g, rc, binder, flow)
}

/// One Table 3 reference row: `(benchmark, dynamic power mW
/// LOPASS/HLPower, clock ns LOPASS/HLPower, LUTs LOPASS/HLPower)`.
pub type PaperTable3Row = (&'static str, (f64, f64), (f64, f64), (u32, u32));

/// The paper's Table 3 reference numbers for side-by-side reporting in
/// EXPERIMENTS.md.
pub const PAPER_TABLE3: [PaperTable3Row; 7] = [
    ("chem", (1602.3, 1468.6), (26.0, 27.5), (9806, 9613)),
    ("dir", (709.1, 405.8), (23.8, 24.2), (4527, 3453)),
    ("honda", (658.7, 534.1), (23.5, 23.2), (3352, 3057)),
    ("mcm", (351.3, 208.7), (24.1, 24.2), (3274, 2548)),
    ("pr", (232.7, 192.9), (20.9, 21.7), (1714, 1732)),
    ("steam", (729.6, 690.6), (24.4, 23.6), (5121, 4469)),
    ("wang", (161.5, 158.5), (20.5, 19.9), (1697, 1775)),
];

/// One Table 4 reference row: `(benchmark, LOPASS mean/var, α=1 mean/var,
/// α=0.5 mean/var, #muxes)`.
pub type PaperTable4Row = (&'static str, (f64, f64), (f64, f64), (f64, f64), u32);

/// The paper's Table 4 reference numbers.
pub const PAPER_TABLE4: [PaperTable4Row; 7] = [
    ("chem", (7.4, 16.1), (4.6, 9.8), (2.4, 5.3), 16),
    ("dir", (5.4, 12.2), (4.0, 11.2), (4.2, 3.8), 5),
    ("honda", (3.1, 11.1), (3.9, 6.4), (3.0, 6.3), 8),
    ("mcm", (1.0, 0.3), (1.8, 0.5), (0.5, 0.3), 6),
    ("pr", (0.8, 0.2), (0.3, 0.2), (0.8, 0.2), 4),
    ("steam", (8.1, 56.1), (6.8, 29.9), (5.8, 26.7), 8),
    ("wang", (1.3, 0.7), (0.8, 0.2), (1.8, 0.7), 4),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn pct_change_signs() {
        assert!((pct_change(100.0, 81.0) + 19.0).abs() < 1e-12);
        assert!((pct_change(100.0, 103.0) - 3.0).abs() < 1e-12);
        assert_eq!(pct_change(0.0, 5.0), 0.0);
    }

    #[test]
    fn paper_reference_data_covers_suite() {
        for p in cdfg::PROFILES {
            assert!(PAPER_TABLE3.iter().any(|(n, ..)| *n == p.name));
            assert!(PAPER_TABLE4.iter().any(|(n, ..)| *n == p.name));
        }
    }
}
