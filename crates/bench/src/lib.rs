//! Shared harness code for the experiment binaries.
//!
//! Each binary in `src/bin/` regenerates one table or figure of the
//! paper on top of the staged [`Pipeline`]: benchmark suite loading,
//! CLI parsing (including the parallel fan-out flags), text-table
//! rendering, and the paper's reference numbers for side-by-side
//! reporting live here.

#![warn(missing_docs)]

use cdfg::{Cdfg, ResourceConstraint};
use hlpower::{paper_constraint, ArtifactStore, Binder, FlowConfig, FlowResult, Pipeline, Shard};
use std::sync::Arc;

/// Default word-parallel lane count of the experiment binaries. The
/// bit-sliced engine makes a 64× vector budget nearly free, so the
/// binaries simulate at full width unless `--paper-exact` restores the
/// paper's single-stream tables.
pub const DEFAULT_LANES: usize = 64;

/// Command-line options shared by the experiment binaries.
///
/// Flags: `--width N`, `--cycles N`, `--sa-width N`, `--seed N` (sets
/// both the simulation and the register-port seed), `--lanes N`
/// (word-parallel simulation lanes, 1..=64; `0` selects the scalar
/// reference engine; default [`DEFAULT_LANES`]), `--paper-exact`
/// (restore the paper's `--lanes 1` single-stream tables),
/// `--bench NAME` (repeatable), `--binder LABEL` (repeatable, see
/// [`parse_binder`]), `--jobs N` (parallel fan-out width), `--fast`
/// (width 8, 300 cycles — for smoke runs), `--store DIR` (persistent
/// artifact store: prepared schedules, mapped netlists, simulation
/// summaries, and the SA table are cached across runs), `--shard i/N`
/// (run only this worker's slice of the benchmark × binder matrix into
/// the store; requires `--store`, combine stores with `hlp merge`).
#[derive(Clone, Debug)]
pub struct Args {
    /// Flow configuration assembled from the flags.
    pub flow: FlowConfig,
    /// Benchmark name filter (empty = whole suite).
    pub only: Vec<String>,
    /// Binder filter (empty = the binary's default set).
    pub binders: Vec<Binder>,
    /// Worker threads for the pipeline fan-out.
    pub jobs: usize,
    /// Artifact-store directory (`--store`).
    pub store: Option<String>,
    /// This worker's slice of the job matrix (`--shard`).
    pub shard: Shard,
}

impl Args {
    /// Parses `std::env::args`, exiting with a usage message on error.
    pub fn parse() -> Args {
        let mut flow = FlowConfig {
            lanes: DEFAULT_LANES,
            ..FlowConfig::default()
        };
        let mut only = Vec::new();
        let mut binders = Vec::new();
        let mut jobs = default_jobs();
        let mut store = None;
        let mut shard = Shard::full();
        let argv: Vec<String> = std::env::args().skip(1).collect();
        let mut i = 0;
        while i < argv.len() {
            let take_value = |i: &mut usize| -> String {
                *i += 1;
                argv.get(*i).unwrap_or_else(|| usage()).clone()
            };
            match argv[i].as_str() {
                "--width" => {
                    flow.width = take_value(&mut i).parse().unwrap_or_else(|_| usage());
                    if flow.width == 0 || flow.width > 64 {
                        eprintln!("--width must be in 1..=64 (word-level buses are u64)");
                        usage();
                    }
                }
                "--sa-width" => {
                    flow.sa_width = take_value(&mut i).parse().unwrap_or_else(|_| usage())
                }
                "--cycles" => {
                    flow.sim_cycles = take_value(&mut i).parse().unwrap_or_else(|_| usage())
                }
                "--lanes" => {
                    // 0 = scalar reference engine, 1..=64 = word engine.
                    flow.lanes = take_value(&mut i).parse().unwrap_or_else(|_| usage());
                    if flow.lanes > gatesim::MAX_LANES {
                        eprintln!("--lanes is limited to {} lanes", gatesim::MAX_LANES);
                        usage();
                    }
                }
                "--paper-exact" => {
                    // The paper's tables: one vector stream, byte-identical
                    // to the scalar reference engine. (Position-sensitive
                    // with --lanes: the later flag wins.)
                    flow.lanes = 1;
                }
                "--seed" => {
                    // One seed flag controls the whole stochastic setup:
                    // simulation vectors *and* the register binding's
                    // random port assignment.
                    let seed = take_value(&mut i).parse().unwrap_or_else(|_| usage());
                    flow.sim_seed = seed;
                    flow.port_seed = seed;
                }
                "--jobs" => {
                    jobs = take_value(&mut i).parse().unwrap_or_else(|_| usage());
                    if jobs == 0 {
                        usage();
                    }
                }
                "--binder" => {
                    let label = take_value(&mut i);
                    binders.push(parse_binder(&label).unwrap_or_else(|| {
                        eprintln!("unknown binder `{label}`");
                        usage()
                    }));
                }
                "--bench" => only.push(take_value(&mut i)),
                "--store" => store = Some(take_value(&mut i)),
                "--shard" => {
                    let spec = take_value(&mut i);
                    shard = Shard::parse(&spec).unwrap_or_else(|| {
                        eprintln!("--shard wants i/N with i < N, got `{spec}`");
                        usage()
                    });
                }
                "--fast" => {
                    flow.width = 8;
                    flow.sa_width = 6;
                    flow.sim_cycles = 300;
                }
                "--help" | "-h" => usage(),
                other => {
                    eprintln!("unknown flag `{other}`");
                    usage()
                }
            }
            i += 1;
        }
        if !shard.is_full() && store.is_none() {
            eprintln!("--shard produces no report; it needs --store DIR to warm");
            usage();
        }
        Args {
            flow,
            only,
            binders,
            jobs,
            store,
            shard,
        }
    }

    /// The benchmark suite (optionally filtered), paired with the paper's
    /// Table 2 resource constraints.
    pub fn suite(&self) -> Vec<(Cdfg, ResourceConstraint)> {
        cdfg::PROFILES
            .iter()
            .filter(|p| self.only.is_empty() || self.only.iter().any(|n| n == p.name))
            .map(|p| {
                let g = cdfg::generate(p, p.seed);
                let rc = paper_constraint(p.name).expect("suite constraint");
                (g, rc)
            })
            .collect()
    }

    /// The `--binder` selection, or `default` when none was given.
    pub fn binders_or(&self, default: &[Binder]) -> Vec<Binder> {
        if self.binders.is_empty() {
            default.to_vec()
        } else {
            self.binders.clone()
        }
    }

    /// Builds a [`Pipeline`] for these flags — attached to the `--store`
    /// artifact store when one was given — and fans the benchmark ×
    /// binder matrix out over `--jobs` workers, with progress on stderr.
    /// Returns the pipeline (for stage counters / SA-cache access) and
    /// `results[bench][binder]`.
    ///
    /// **Sharded invocations terminate here.** With `--shard i/N` (N > 1)
    /// the run is a store-warming worker: it executes only its slice of
    /// the matrix into the store, prints a summary to stderr, and exits
    /// the process — no report is rendered, because the matrix is
    /// partial. Combine the shard stores with `hlp merge` and rerun
    /// unsharded against the merged store for the full (all-hits) report.
    pub fn run_matrix(
        &self,
        suite: &[(Cdfg, ResourceConstraint)],
        binders: &[Binder],
    ) -> (Pipeline, Vec<Vec<FlowResult>>) {
        let pipeline = self.pipeline();
        if !self.shard.is_full() {
            let results = pipeline.run_matrix_sharded(suite, binders, self.jobs, self.shard);
            let ran: usize = results.iter().flatten().filter(|r| r.is_some()).count();
            let total = suite.len() * binders.len();
            report_stats(&pipeline);
            eprintln!(
                "  shard {}: warmed {ran} of {total} job(s) into `{}`; no report (merge \
                 shard stores with `hlp merge`, then rerun unsharded)",
                self.shard,
                self.store.as_deref().unwrap_or("?"),
            );
            std::process::exit(0);
        }
        let results = run_on(&pipeline, suite, binders, self.jobs);
        (pipeline, results)
    }

    /// Builds the pipeline for these flags, opening the `--store`
    /// artifact store when one was given (exiting with a message if the
    /// directory cannot be created).
    pub fn pipeline(&self) -> Pipeline {
        self.pipeline_for(self.flow.clone())
    }

    /// Like [`Args::pipeline`] but for a derived flow configuration —
    /// the ablation binaries run several configurations against the same
    /// `--store` directory (artifacts of different configurations can
    /// never collide: every configuration knob that shapes an artifact
    /// is a fingerprint ingredient).
    pub fn pipeline_for(&self, flow: FlowConfig) -> Pipeline {
        match &self.store {
            Some(dir) => {
                let store = ArtifactStore::open(dir).unwrap_or_else(|e| {
                    eprintln!("cannot open artifact store `{dir}`: {e}");
                    std::process::exit(1);
                });
                Pipeline::with_store(flow, Arc::new(store))
            }
            None => Pipeline::new(flow),
        }
    }
}

/// Prints the pipeline's stage-execution and store hit/miss counters to
/// stderr (the observable caching evidence; stdout stays reserved for
/// deterministic report output).
fn report_stats(pipeline: &Pipeline) {
    let s = pipeline.stats();
    let c = s.stages;
    eprintln!(
        "  stages: {} schedules, {} regbinds, {} fu-binds, {} mappings, {} simulations",
        c.schedules, c.register_bindings, c.fu_bindings, c.mappings, c.simulations
    );
    if pipeline.store().is_some() {
        eprintln!("  store: {}", s.store);
    }
}

/// Fans `suite × binders` out on an existing pipeline, with progress on
/// stderr (stdout stays reserved for deterministic report output).
pub fn run_on(
    pipeline: &Pipeline,
    suite: &[(Cdfg, ResourceConstraint)],
    binders: &[Binder],
    jobs: usize,
) -> Vec<Vec<FlowResult>> {
    eprintln!(
        "  fan-out: {} benchmark(s) x {} binder(s) on {} job(s)",
        suite.len(),
        binders.len(),
        jobs
    );
    let results = pipeline.run_matrix(suite, binders, jobs);
    report_stats(pipeline);
    results
}

/// Exits with an error if `--shard` was passed to a binary that drives
/// pipelines by hand instead of through [`Args::run_matrix`] (accepting
/// the flag and silently running the whole matrix would defeat the
/// point of sharding).
pub fn reject_shard_flag(args: &Args, binary: &str) {
    if !args.shard.is_full() {
        eprintln!(
            "{binary}: this binary drives several flow configurations by hand and does not \
             support --shard (shard the matrix binaries, e.g. all_experiments, instead)"
        );
        std::process::exit(2);
    }
}

/// Exits with an error if `--binder` was passed to a binary whose
/// binder set is fixed by the table it reproduces (accepting the flag
/// and silently ignoring it would mislabel the results).
pub fn reject_binder_flag(args: &Args, binary: &str) {
    if !args.binders.is_empty() {
        eprintln!(
            "{binary}: the binder set is fixed by the paper table this binary reproduces; \
             --binder is not supported (use `binders` or `table2` for custom binder sets)"
        );
        std::process::exit(2);
    }
}

/// Parses a binder label: `lopass`, `lopass-ic`, `lopass-sa`, `hlpower`,
/// or `hlpower-zd`, with an optional `:ALPHA` suffix for the HLPower
/// variants (default α = 0.5), e.g. `hlpower:1.0`.
pub fn parse_binder(label: &str) -> Option<Binder> {
    let (name, alpha) = match label.split_once(':') {
        Some((name, a)) => (name, a.parse::<f64>().ok()?),
        None => (label, 0.5),
    };
    match name {
        "lopass" => Some(Binder::Lopass),
        "lopass-ic" => Some(Binder::LopassInterconnect),
        "lopass-sa" => Some(Binder::LopassAnnealed),
        "hlpower" => Some(Binder::HlPower { alpha }),
        "hlpower-zd" => Some(Binder::HlPowerZeroDelay { alpha }),
        _ => None,
    }
}

fn default_jobs() -> usize {
    std::thread::available_parallelism()
        .map(|n| n.get())
        .unwrap_or(1)
        .min(8)
}

fn usage() -> ! {
    eprintln!(
        "usage: <bin> [--width N] [--sa-width N] [--cycles N] [--seed N] [--lanes N] \
         [--paper-exact] [--bench NAME]... [--binder LABEL[:ALPHA]]... [--jobs N] [--fast] \
         [--store DIR] [--shard i/N]"
    );
    std::process::exit(2)
}

/// Renders an aligned text table.
pub fn render_table(headers: &[&str], rows: &[Vec<String>]) -> String {
    let mut widths: Vec<usize> = headers.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate() {
            if i < widths.len() {
                widths[i] = widths[i].max(cell.len());
            }
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        cells
            .iter()
            .enumerate()
            .map(|(i, c)| format!("{:>w$}", c, w = widths.get(i).copied().unwrap_or(0)))
            .collect::<Vec<_>>()
            .join("  ")
    };
    let header_cells: Vec<String> = headers.iter().map(|h| h.to_string()).collect();
    out.push_str(&fmt_row(&header_cells, &widths));
    out.push('\n');
    out.push_str(&"-".repeat(widths.iter().sum::<usize>() + 2 * (widths.len() - 1)));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Percentage change from `from` to `to` (negative = reduction).
pub fn pct_change(from: f64, to: f64) -> f64 {
    if from == 0.0 {
        0.0
    } else {
        (to - from) / from * 100.0
    }
}

/// One Table 3 reference row: `(benchmark, dynamic power mW
/// LOPASS/HLPower, clock ns LOPASS/HLPower, LUTs LOPASS/HLPower)`.
pub type PaperTable3Row = (&'static str, (f64, f64), (f64, f64), (u32, u32));

/// The paper's Table 3 reference numbers for side-by-side reporting in
/// EXPERIMENTS.md.
pub const PAPER_TABLE3: [PaperTable3Row; 7] = [
    ("chem", (1602.3, 1468.6), (26.0, 27.5), (9806, 9613)),
    ("dir", (709.1, 405.8), (23.8, 24.2), (4527, 3453)),
    ("honda", (658.7, 534.1), (23.5, 23.2), (3352, 3057)),
    ("mcm", (351.3, 208.7), (24.1, 24.2), (3274, 2548)),
    ("pr", (232.7, 192.9), (20.9, 21.7), (1714, 1732)),
    ("steam", (729.6, 690.6), (24.4, 23.6), (5121, 4469)),
    ("wang", (161.5, 158.5), (20.5, 19.9), (1697, 1775)),
];

/// One Table 4 reference row: `(benchmark, LOPASS mean/var, α=1 mean/var,
/// α=0.5 mean/var, #muxes)`.
pub type PaperTable4Row = (&'static str, (f64, f64), (f64, f64), (f64, f64), u32);

/// The paper's Table 4 reference numbers.
pub const PAPER_TABLE4: [PaperTable4Row; 7] = [
    ("chem", (7.4, 16.1), (4.6, 9.8), (2.4, 5.3), 16),
    ("dir", (5.4, 12.2), (4.0, 11.2), (4.2, 3.8), 5),
    ("honda", (3.1, 11.1), (3.9, 6.4), (3.0, 6.3), 8),
    ("mcm", (1.0, 0.3), (1.8, 0.5), (0.5, 0.3), 6),
    ("pr", (0.8, 0.2), (0.3, 0.2), (0.8, 0.2), 4),
    ("steam", (8.1, 56.1), (6.8, 29.9), (5.8, 26.7), 8),
    ("wang", (1.3, 0.7), (0.8, 0.2), (1.8, 0.7), 4),
];

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn render_table_aligns() {
        let t = render_table(
            &["name", "value"],
            &[
                vec!["a".into(), "1".into()],
                vec!["longer".into(), "22".into()],
            ],
        );
        let lines: Vec<&str> = t.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].contains("name"));
        assert!(lines[3].contains("longer"));
    }

    #[test]
    fn pct_change_signs() {
        assert!((pct_change(100.0, 81.0) + 19.0).abs() < 1e-12);
        assert!((pct_change(100.0, 103.0) - 3.0).abs() < 1e-12);
        assert_eq!(pct_change(0.0, 5.0), 0.0);
    }

    #[test]
    fn paper_reference_data_covers_suite() {
        for p in cdfg::PROFILES {
            assert!(PAPER_TABLE3.iter().any(|(n, ..)| *n == p.name));
            assert!(PAPER_TABLE4.iter().any(|(n, ..)| *n == p.name));
        }
    }

    #[test]
    fn binder_labels_parse() {
        assert_eq!(parse_binder("lopass"), Some(Binder::Lopass));
        assert_eq!(parse_binder("lopass-ic"), Some(Binder::LopassInterconnect));
        assert_eq!(parse_binder("lopass-sa"), Some(Binder::LopassAnnealed));
        assert_eq!(
            parse_binder("hlpower"),
            Some(Binder::HlPower { alpha: 0.5 })
        );
        assert_eq!(
            parse_binder("hlpower:1.0"),
            Some(Binder::HlPower { alpha: 1.0 })
        );
        assert_eq!(
            parse_binder("hlpower-zd:0.25"),
            Some(Binder::HlPowerZeroDelay { alpha: 0.25 })
        );
        assert_eq!(parse_binder("nope"), None);
        assert_eq!(parse_binder("hlpower:x"), None);
    }
}
