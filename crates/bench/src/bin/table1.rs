//! Regenerates **Table 1**: benchmark profiles (PIs, POs, adds, mults,
//! edges). PI/PO/add/mult counts match the paper exactly by construction;
//! the edge column shows the paper's count next to our structural count
//! (`2·ops + POs`; the original CDFG format counted additional edge kinds
//! — see DESIGN.md).
//!
//! ```text
//! cargo run --release -p hlpower-bench --bin table1
//! ```

use cdfg::FuType;
use hlpower_bench::render_table;

fn main() {
    let mut rows = Vec::new();
    for p in &cdfg::PROFILES {
        let g = cdfg::generate(p, p.seed);
        g.check().expect("generated benchmark must be valid");
        rows.push(vec![
            p.name.to_string(),
            g.inputs().len().to_string(),
            g.outputs().len().to_string(),
            g.op_count(FuType::AddSub).to_string(),
            g.op_count(FuType::Mul).to_string(),
            format!("{}", p.paper_edges),
            g.num_edges().to_string(),
            g.critical_path().to_string(),
        ]);
    }
    println!("\nTable 1: Benchmark Profiles");
    println!(
        "{}",
        render_table(
            &[
                "Bench",
                "PIs",
                "POs",
                "Adds",
                "Mults",
                "Edges(paper)",
                "Edges(ours)",
                "CritPath"
            ],
            &rows
        )
    );
}
