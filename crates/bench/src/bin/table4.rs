//! Regenerates **Table 4**: mean and variance of `muxDiff` across all
//! allocated functional units, for LOPASS, HLPower α=1, and HLPower
//! α=0.5, plus the number of FU input muxes. Paper reference values are
//! printed in parentheses.
//!
//! ```text
//! cargo run --release -p hlpower-bench --bin table4 [-- --fast --jobs 4]
//! ```

use hlpower::Binder;
use hlpower_bench::{render_table, Args, PAPER_TABLE4};

fn main() {
    let args = Args::parse();
    hlpower_bench::reject_binder_flag(&args, "table4");
    let suite = args.suite();
    let binders = [
        Binder::Lopass,
        Binder::HlPower { alpha: 1.0 },
        Binder::HlPower { alpha: 0.5 },
    ];
    let (_, results) = args.run_matrix(&suite, &binders);
    let mut rows = Vec::new();
    let mut avgs = [[0.0f64; 2]; 3];
    let mut n = 0usize;
    for ((g, _), per) in suite.iter().zip(&results) {
        let paper = PAPER_TABLE4
            .iter()
            .find(|(name, ..)| *name == g.name())
            .expect("known benchmark");
        let mut cells = vec![g.name().to_string()];
        for (k, r) in per.iter().enumerate() {
            let (mean, var) = (r.mux.muxdiff_mean(), r.mux.muxdiff_variance());
            avgs[k][0] += mean;
            avgs[k][1] += var;
            let paper_ref = match k {
                0 => paper.1,
                1 => paper.2,
                _ => paper.3,
            };
            cells.push(format!(
                "{mean:.1}/{var:.1} (p {:.1}/{:.1})",
                paper_ref.0, paper_ref.1
            ));
            if k == 2 {
                cells.push(format!("{} (p {})", r.mux.num_fu_muxes(), paper.4));
            }
        }
        rows.push(cells);
        n += 1;
    }
    if n > 0 {
        let mut avg_row = vec!["average".to_string()];
        for a in avgs {
            avg_row.push(format!("{:.1}/{:.1}", a[0] / n as f64, a[1] / n as f64));
        }
        avg_row.push(String::new());
        rows.push(avg_row);
    }
    println!("\nTable 4: mean/variance of muxDiff across allocated FUs");
    println!("(cells: ours mean/var, `p` = paper reference)");
    println!(
        "{}",
        render_table(
            &["Bench", "LOPASS", "HLPower a=1", "HLPower a=0.5", "# muxes"],
            &rows
        )
    );
    println!("Paper averages: LOPASS 3.9/13.8, a=1 3.2/8.3, a=0.5 2.6/6.2");
}
