//! Regenerates **Figure 3**: average toggle rate (millions of transitions
//! per second) per benchmark for LOPASS, HLPower α=1, and HLPower α=0.5,
//! as an ASCII bar chart plus a CSV block for replotting.
//!
//! ```text
//! cargo run --release -p hlpower-bench --bin fig3 [-- --fast --jobs 4]
//! ```

use hlpower::Binder;
use hlpower_bench::{pct_change, Args};

fn main() {
    let args = Args::parse();
    hlpower_bench::reject_binder_flag(&args, "fig3");
    let suite = args.suite();
    let binders = [
        Binder::Lopass,
        Binder::HlPower { alpha: 1.0 },
        Binder::HlPower { alpha: 0.5 },
    ];
    let (_, results) = args.run_matrix(&suite, &binders);
    let series: Vec<(String, [f64; 3])> = suite
        .iter()
        .zip(&results)
        .map(|((g, _), per)| {
            (
                g.name().to_string(),
                [
                    per[0].power.avg_toggle_rate_mhz,
                    per[1].power.avg_toggle_rate_mhz,
                    per[2].power.avg_toggle_rate_mhz,
                ],
            )
        })
        .collect();
    let max = series
        .iter()
        .flat_map(|(_, v)| v.iter().copied())
        .fold(1.0f64, f64::max);
    println!("\nFigure 3: Average Toggle Rate (millions of transitions / sec)");
    println!("  bars: L = LOPASS, 1 = HLPower a=1, 5 = HLPower a=0.5\n");
    for (name, vals) in &series {
        for (label, v) in ["L", "1", "5"].iter().zip(vals) {
            let width = ((v / max) * 50.0).round() as usize;
            println!("  {name:>6} {label} |{} {v:.1}", "#".repeat(width));
        }
        println!();
    }
    // Averages and CSV.
    let n = series.len().max(1) as f64;
    let avg = |k: usize| series.iter().map(|(_, v)| v[k]).sum::<f64>() / n;
    let (l, a1, a05) = (avg(0), avg(1), avg(2));
    println!(
        "average toggle-rate change vs LOPASS: a=1 {:+.1}%, a=0.5 {:+.1}% (paper: -8.4%, -21.9%)",
        pct_change(l, a1),
        pct_change(l, a05)
    );
    println!("\ncsv:");
    println!("benchmark,lopass,hlpower_a1,hlpower_a05");
    for (name, vals) in &series {
        println!("{name},{:.3},{:.3},{:.3}", vals[0], vals[1], vals[2]);
    }
}
