//! Regenerates **Table 2**: resource constraints, schedule length,
//! register count, and HLPower binding runtime per benchmark. The paper's
//! reference values are printed beside ours (schedules and register
//! counts depend on the scheduler and the synthetic benchmark instances;
//! constraints are identical by construction).
//!
//! ```text
//! cargo run --release -p hlpower-bench --bin table2 [-- --fast]
//! ```

use hlpower::flow::{bind, prepare, sa_table_for};
use hlpower::{Binder, DatapathConfig};
use hlpower_bench::{render_table, Args};

/// Paper Table 2: (name, add, mult, cycles, registers, runtime seconds).
const PAPER: [(&str, usize, usize, u32, u32, f64); 7] = [
    ("chem", 9, 7, 39, 70, 812.0),
    ("dir", 3, 2, 41, 25, 56.0),
    ("honda", 4, 4, 18, 13, 14.0),
    ("mcm", 4, 2, 27, 54, 16.0),
    ("pr", 2, 2, 16, 32, 2.0),
    ("steam", 7, 6, 28, 39, 189.0),
    ("wang", 2, 2, 18, 39, 2.0),
];

fn main() {
    let args = Args::parse();
    let mut rows = Vec::new();
    for (g, rc) in args.suite() {
        let paper = PAPER.iter().find(|(n, ..)| *n == g.name()).expect("known benchmark");
        let (sched, rb) = prepare(&g, &rc, &args.flow);
        let mut table = sa_table_for(&args.flow, Binder::HlPower { alpha: 0.5 });
        let (fb, elapsed) =
            bind(&g, &sched, &rb, &rc, Binder::HlPower { alpha: 0.5 }, &mut table);
        // Instantiated registers (input registers included, as in the
        // paper's datapaths) come from the elaborated design.
        let dp = hlpower::elaborate(
            &g,
            &sched,
            &rb,
            &fb,
            &DatapathConfig::with_width(args.flow.width),
        );
        rows.push(vec![
            g.name().to_string(),
            rc.addsub.to_string(),
            rc.mul.to_string(),
            format!("{}/{}", paper.3, sched.num_steps),
            format!("{}/{}", paper.4, dp.registers),
            format!("{:.1}/{:.3}", paper.5, elapsed.as_secs_f64()),
        ]);
    }
    println!("\nTable 2: Resource Constraints, Scheduling Length, Registers, HLPower Runtime");
    println!("(x/y cells: paper value / this reproduction)");
    println!(
        "{}",
        render_table(
            &["Bench", "Add", "Mult", "Cycle(p/ours)", "Reg(p/ours)", "Runtime s (p/ours)"],
            &rows
        )
    );
    println!("Paper runtimes are from a 2.8 GHz Pentium 4 (2009) with dynamic SA estimation;\nours use the precalculated SA table (the paper's own speed-up) on modern hardware.");
}
