//! Regenerates **Table 2**: resource constraints, schedule length,
//! register count, and HLPower binding runtime per benchmark. The paper's
//! reference values are printed beside ours (schedules and register
//! counts depend on the scheduler and the synthetic benchmark instances;
//! constraints are identical by construction).
//!
//! ```text
//! cargo run --release -p hlpower-bench --bin table2 [-- --fast --jobs 4]
//! ```

use hlpower::Binder;
use hlpower_bench::{render_table, Args};

/// Paper Table 2: (name, add, mult, cycles, registers, runtime seconds).
const PAPER: [(&str, usize, usize, u32, u32, f64); 7] = [
    ("chem", 9, 7, 39, 70, 812.0),
    ("dir", 3, 2, 41, 25, 56.0),
    ("honda", 4, 4, 18, 13, 14.0),
    ("mcm", 4, 2, 27, 54, 16.0),
    ("pr", 2, 2, 16, 32, 2.0),
    ("steam", 7, 6, 28, 39, 189.0),
    ("wang", 2, 2, 18, 39, 2.0),
];

fn main() {
    let args = Args::parse();
    let suite = args.suite();
    let binders = args.binders_or(&[Binder::HlPower { alpha: 0.5 }]);
    let (_, results) = args.run_matrix(&suite, &binders);
    let mut rows = Vec::new();
    for ((g, rc), per) in suite.iter().zip(&results) {
        let paper = PAPER
            .iter()
            .find(|(n, ..)| *n == g.name())
            .expect("known benchmark");
        for r in per {
            rows.push(vec![
                g.name().to_string(),
                r.binder.clone(),
                rc.addsub.to_string(),
                rc.mul.to_string(),
                format!("{}/{}", paper.3, r.schedule_steps),
                format!("{}/{}", paper.4, r.registers),
                format!("{:.1}/{:.3}", paper.5, r.bind_time.as_secs_f64()),
                r.sa_queries.to_string(),
            ]);
        }
    }
    println!("\nTable 2: Resource Constraints, Scheduling Length, Registers, Binding Runtime");
    println!("(x/y cells: paper value / this reproduction; the paper's runtime column is");
    println!(" HLPower's. SAq = SA-table queries, the deterministic work metric behind it)");
    println!(
        "{}",
        render_table(
            &[
                "Bench",
                "Binder",
                "Add",
                "Mult",
                "Cycle(p/ours)",
                "Reg(p/ours)",
                "Runtime s (p/ours)",
                "SAq"
            ],
            &rows
        )
    );
    println!("Paper runtimes are from a 2.8 GHz Pentium 4 (2009) with dynamic SA estimation;\nours use the precalculated SA table (the paper's own speed-up) on modern hardware.");
}
