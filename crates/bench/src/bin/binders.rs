//! Compares every binder variant side by side on the benchmark suite —
//! the quick way to explore the binding design space.
//!
//! ```text
//! cargo run --release -p hlpower-bench --bin binders [-- --fast --bench pr]
//! ```
use hlpower::Binder;
use hlpower_bench::{run_one, Args};

fn main() {
    let args = Args::parse();
    for (g, rc) in args.suite() {
        for binder in [
            Binder::Lopass,
            Binder::LopassInterconnect,
            Binder::LopassAnnealed,
            Binder::HlPower { alpha: 1.0 },
            Binder::HlPower { alpha: 0.5 },
        ] {
            let r = run_one(&g, &rc, binder, &args.flow);
            println!(
                "{:8} {:18} pow={:7.2}mW luts={:5} len={:4} lrg={:2} mdMean={:.2} mdVar={:.2} togg={:.1} glitch={:.2} estSA={:.0}",
                r.name, r.binder, r.power.dynamic_power_mw, r.luts, r.mux.length,
                r.mux.largest, r.mux.muxdiff_mean(), r.mux.muxdiff_variance(),
                r.power.avg_toggle_rate_mhz, r.power.glitch_fraction, r.estimated_sa
            );
        }
    }
}
