//! Compares every binder variant side by side on the benchmark suite —
//! the quick way to explore the binding design space. `--binder` narrows
//! the comparison, e.g. `--binder lopass --binder hlpower:0.25`.
//!
//! ```text
//! cargo run --release -p hlpower-bench --bin binders [-- --fast --bench pr --jobs 4]
//! ```
use hlpower::Binder;
use hlpower_bench::Args;

fn main() {
    let args = Args::parse();
    let suite = args.suite();
    let binders = args.binders_or(&[
        Binder::Lopass,
        Binder::LopassInterconnect,
        Binder::LopassAnnealed,
        Binder::HlPower { alpha: 1.0 },
        Binder::HlPower { alpha: 0.5 },
    ]);
    let (_, results) = args.run_matrix(&suite, &binders);
    for per in &results {
        for r in per {
            println!(
                "{:8} {:18} pow={:7.2}mW luts={:5} len={:4} lrg={:2} mdMean={:.2} mdVar={:.2} togg={:.1} glitch={:.2} estSA={:.0}",
                r.name, r.binder, r.power.dynamic_power_mw, r.luts, r.mux.length,
                r.mux.largest, r.mux.muxdiff_mean(), r.mux.muxdiff_variance(),
                r.power.avg_toggle_rate_mhz, r.power.glitch_fraction, r.estimated_sa
            );
        }
    }
}
