//! Design-choice ablations beyond the paper's tables:
//!
//! 1. **LUT size K** — map the same bindings onto 4/5/6-input LUTs;
//! 2. **Glitch-aware vs zero-delay SA** inside Eq. 4's edge weights;
//! 3. **FSM controller overhead** vs testbench-driven control;
//! 4. **Register binding algorithm** — the paper's weighted matching vs
//!    classic left-edge, measured through the full flow;
//! 5. **Multi-cycle multipliers** (the paper's future-work scenario).
//!
//! Each ablation draws its shared artifacts from a staged pipeline: the
//! schedule/register-binding front end is computed once per benchmark per
//! flow configuration, and every binding run pools its partial-datapath
//! SA estimates in the pipeline's shared cache.
//!
//! ```text
//! cargo run --release -p hlpower-bench --bin ablations [-- --fast --bench pr --jobs 4]
//! ```

use cdfg::ResourceLibrary;
use hlpower::{
    bind_registers_left_edge, elaborate, mux_report, Binder, ControlStyle, DatapathConfig,
    FlowConfig, Prepared, RegBindConfig,
};
use hlpower_bench::{pct_change, render_table, run_on, Args};
use mapper::{map, MapConfig};

fn main() {
    let args = Args::parse();
    hlpower_bench::reject_binder_flag(&args, "ablations");
    hlpower_bench::reject_shard_flag(&args, "ablations");
    let suite = args.suite();
    let take = suite.len().min(3);
    let small = &suite[suite.len() - take..]; // the smaller benchmarks
    let binder = Binder::HlPower { alpha: 0.5 };

    // One service owns the --store hot store; each flow configuration
    // gets its own pipeline behind it (the per-configuration
    // fingerprints keep their artifacts apart). The α=0.5 binding
    // feeding ablations 1–3 is bound exactly once per benchmark here:
    // the K sweep keeps the elaborated datapath, and the measured
    // FlowResult is reused as the glitch-aware / external-control
    // reference below.
    let service = args.service();
    let pipeline = service.pipeline_for(&args.flow);
    let zd_results = run_on(
        &pipeline,
        small,
        &[Binder::HlPowerZeroDelay { alpha: 0.5 }],
        args.jobs,
    );

    // ---- 1. LUT size sweep ------------------------------------------------
    println!("=== Ablation 1: LUT input count K (HLPower a=0.5 bindings) ===");
    let mut rows = Vec::new();
    let mut a05_results = Vec::new();
    for (g, rc) in small {
        let prep = pipeline.prepare(g, rc);
        let outcome = pipeline.bind(&prep, binder);
        let dp = elaborate(
            g,
            &prep.sched,
            &prep.rb,
            &outcome.fb,
            &DatapathConfig::with_width(args.flow.width),
        );
        let mut cells = vec![g.name().to_string()];
        for k in [4usize, 5, 6] {
            let m = map(&dp.netlist, &MapConfig::new(k, args.flow.map_objective));
            cells.push(format!("{} LUTs/d{}", m.stats.luts, m.stats.depth));
        }
        rows.push(cells);
        a05_results.push(pipeline.measure(&prep, &outcome, binder));
    }
    println!("{}", render_table(&["Bench", "K=4", "K=5", "K=6"], &rows));

    // ---- 2. Glitch-aware vs zero-delay SA in Eq. 4 ------------------------
    println!("=== Ablation 2: glitch-aware vs zero-delay SA in the edge weight ===");
    let mut rows = Vec::new();
    for ((g, _), (glitchy, zd_per)) in small.iter().zip(a05_results.iter().zip(&zd_results)) {
        let blind = &zd_per[0];
        rows.push(vec![
            g.name().to_string(),
            format!("{:.2}", glitchy.power.dynamic_power_mw),
            format!("{:.2}", blind.power.dynamic_power_mw),
            format!(
                "{:+.1}%",
                pct_change(glitchy.power.dynamic_power_mw, blind.power.dynamic_power_mw)
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Bench", "glitch-aware mW", "zero-delay mW", "delta"],
            &rows
        )
    );

    // ---- 3. FSM controller overhead ---------------------------------------
    // The FSM flow is a different configuration, hence its own pipeline;
    // the external-control numbers reuse the shared results above.
    println!("=== Ablation 3: on-chip FSM controller vs external control ===");
    let fsm_pipeline = service.pipeline_for(&FlowConfig {
        control: ControlStyle::Fsm,
        ..args.flow.clone()
    });
    let fsm_results = run_on(&fsm_pipeline, small, &[binder], args.jobs);
    let mut rows = Vec::new();
    for ((g, _), (ext, fsm_per)) in small.iter().zip(a05_results.iter().zip(&fsm_results)) {
        let fsm = &fsm_per[0];
        rows.push(vec![
            g.name().to_string(),
            format!("{}", ext.luts),
            format!("{}", fsm.luts),
            format!("{:.2}", ext.power.dynamic_power_mw),
            format!("{:.2}", fsm.power.dynamic_power_mw),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Bench", "LUTs ext", "LUTs fsm", "mW ext", "mW fsm"],
            &rows
        )
    );

    // ---- 4. Register binding algorithm ------------------------------------
    // Swaps one front-end artifact (the register binding) while keeping
    // the cached schedule; both bindings draw on the pipeline's shared
    // SA cache.
    println!("=== Ablation 4: weighted-matching vs left-edge register binding ===");
    let mut rows = Vec::new();
    for (g, rc) in small {
        let prep = pipeline.prepare(g, rc);
        let rb_le = bind_registers_left_edge(
            g,
            &prep.sched,
            &RegBindConfig {
                lifetime: cdfg::LifetimeOptions {
                    latch_inputs: false,
                },
                seed: args.flow.port_seed,
            },
        );
        let prep_le = Prepared {
            rb: rb_le,
            ..(*prep).clone()
        };
        let fb_wm = pipeline.bind(&prep, binder).fb;
        let fb_le = pipeline.bind(&prep_le, binder).fb;
        let m_wm = mux_report(g, &prep.rb, &fb_wm);
        let m_le = mux_report(g, &prep_le.rb, &fb_le);
        rows.push(vec![
            g.name().to_string(),
            format!("{}", prep.rb.num_regs),
            format!("{}", m_wm.length),
            format!("{}", m_le.length),
            format!(
                "{:+.1}%",
                pct_change(m_wm.length as f64, m_le.length as f64)
            ),
        ]);
    }
    println!(
        "{}",
        render_table(
            &[
                "Bench",
                "regs",
                "muxlen matching",
                "muxlen left-edge",
                "delta"
            ],
            &rows
        )
    );

    // ---- 5. Multi-cycle multipliers ----------------------------------------
    println!("=== Ablation 5: 2-cycle multipliers (paper future work) ===");
    let multi_pipeline = service.pipeline_for(&FlowConfig {
        library: ResourceLibrary {
            addsub_latency: 1,
            mul_latency: 2,
        },
        ..args.flow.clone()
    });
    let multi_results = run_on(&multi_pipeline, small, &[binder], args.jobs);
    let mut rows = Vec::new();
    for ((g, _), per) in small.iter().zip(&multi_results) {
        let r = &per[0];
        rows.push(vec![
            g.name().to_string(),
            format!("{}", r.schedule_steps),
            format!("{}", r.fus_mul),
            if r.meets_constraint {
                "yes".into()
            } else {
                "NO".into()
            },
            format!("{:.2}", r.power.dynamic_power_mw),
        ]);
    }
    println!(
        "{}",
        render_table(&["Bench", "steps", "mults", "meets rc", "mW"], &rows)
    );

    // The manual prepare/bind/measure loops above ran outside run_matrix,
    // so merge every pipeline's SA entries into the store explicitly.
    service.flush();
}
