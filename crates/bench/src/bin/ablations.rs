//! Design-choice ablations beyond the paper's tables:
//!
//! 1. **LUT size K** — map the same bindings onto 4/5/6-input LUTs;
//! 2. **Glitch-aware vs zero-delay SA** inside Eq. 4's edge weights;
//! 3. **FSM controller overhead** vs testbench-driven control;
//! 4. **Register binding algorithm** — the paper's weighted matching vs
//!    classic left-edge, measured through the full flow;
//! 5. **Multi-cycle multipliers** (the paper's future-work scenario).
//!
//! ```text
//! cargo run --release -p hlpower-bench --bin ablations [-- --fast --bench pr]
//! ```

use cdfg::ResourceLibrary;
use hlpower::flow::{bind, measure, prepare, sa_table_for};
use hlpower::{
    bind_registers_left_edge, elaborate, mux_report, Binder, ControlStyle,
    DatapathConfig, FlowConfig, RegBindConfig,
};
use hlpower_bench::{pct_change, render_table, run_one, Args};
use mapper::{map, MapConfig};

fn main() {
    let args = Args::parse();
    let suite = args.suite();
    let take = suite.len().min(3);
    let small = &suite[suite.len() - take..]; // the smaller benchmarks

    // ---- 1. LUT size sweep ------------------------------------------------
    println!("=== Ablation 1: LUT input count K (HLPower a=0.5 bindings) ===");
    let mut rows = Vec::new();
    for (g, rc) in small {
        let (sched, rb) = prepare(g, rc, &args.flow);
        let binder = Binder::HlPower { alpha: 0.5 };
        let mut table = sa_table_for(&args.flow, binder);
        let (fb, _) = bind(g, &sched, &rb, rc, binder, &mut table);
        let dp = elaborate(g, &sched, &rb, &fb, &DatapathConfig::with_width(args.flow.width));
        let mut cells = vec![g.name().to_string()];
        for k in [4usize, 5, 6] {
            let m = map(&dp.netlist, &MapConfig::new(k, args.flow.map_objective));
            cells.push(format!("{} LUTs/d{}", m.stats.luts, m.stats.depth));
        }
        rows.push(cells);
    }
    println!("{}", render_table(&["Bench", "K=4", "K=5", "K=6"], &rows));

    // ---- 2. Glitch-aware vs zero-delay SA in Eq. 4 ------------------------
    println!("=== Ablation 2: glitch-aware vs zero-delay SA in the edge weight ===");
    let mut rows = Vec::new();
    for (g, rc) in small {
        let glitchy = run_one(g, rc, Binder::HlPower { alpha: 0.5 }, &args.flow);
        let blind = run_one(g, rc, Binder::HlPowerZeroDelay { alpha: 0.5 }, &args.flow);
        rows.push(vec![
            g.name().to_string(),
            format!("{:.2}", glitchy.power.dynamic_power_mw),
            format!("{:.2}", blind.power.dynamic_power_mw),
            format!(
                "{:+.1}%",
                pct_change(glitchy.power.dynamic_power_mw, blind.power.dynamic_power_mw)
            ),
        ]);
    }
    println!(
        "{}",
        render_table(&["Bench", "glitch-aware mW", "zero-delay mW", "delta"], &rows)
    );

    // ---- 3. FSM controller overhead ---------------------------------------
    println!("=== Ablation 3: on-chip FSM controller vs external control ===");
    let mut rows = Vec::new();
    for (g, rc) in small {
        let ext = run_one(g, rc, Binder::HlPower { alpha: 0.5 }, &args.flow);
        let fsm_cfg = FlowConfig { control: ControlStyle::Fsm, ..args.flow.clone() };
        let fsm = run_one(g, rc, Binder::HlPower { alpha: 0.5 }, &fsm_cfg);
        rows.push(vec![
            g.name().to_string(),
            format!("{}", ext.luts),
            format!("{}", fsm.luts),
            format!("{:.2}", ext.power.dynamic_power_mw),
            format!("{:.2}", fsm.power.dynamic_power_mw),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Bench", "LUTs ext", "LUTs fsm", "mW ext", "mW fsm"],
            &rows
        )
    );

    // ---- 4. Register binding algorithm ------------------------------------
    println!("=== Ablation 4: weighted-matching vs left-edge register binding ===");
    let mut rows = Vec::new();
    for (g, rc) in small {
        let (sched, rb_wm) = prepare(g, rc, &args.flow);
        let rb_le = bind_registers_left_edge(
            g,
            &sched,
            &RegBindConfig {
                lifetime: cdfg::LifetimeOptions { latch_inputs: false },
                seed: args.flow.port_seed,
            },
        );
        let binder = Binder::HlPower { alpha: 0.5 };
        let mut t1 = sa_table_for(&args.flow, binder);
        let (fb_wm, _) = bind(g, &sched, &rb_wm, rc, binder, &mut t1);
        let mut t2 = sa_table_for(&args.flow, binder);
        let (fb_le, _) = bind(g, &sched, &rb_le, rc, binder, &mut t2);
        let m_wm = mux_report(g, &rb_wm, &fb_wm);
        let m_le = mux_report(g, &rb_le, &fb_le);
        rows.push(vec![
            g.name().to_string(),
            format!("{}", rb_wm.num_regs),
            format!("{}", m_wm.length),
            format!("{}", m_le.length),
            format!("{:+.1}%", pct_change(m_wm.length as f64, m_le.length as f64)),
        ]);
    }
    println!(
        "{}",
        render_table(
            &["Bench", "regs", "muxlen matching", "muxlen left-edge", "delta"],
            &rows
        )
    );

    // ---- 5. Multi-cycle multipliers ----------------------------------------
    println!("=== Ablation 5: 2-cycle multipliers (paper future work) ===");
    let mut rows = Vec::new();
    for (g, rc) in small {
        let multi = FlowConfig {
            library: ResourceLibrary { addsub_latency: 1, mul_latency: 2 },
            ..args.flow.clone()
        };
        let (sched, rb) = prepare(g, rc, &multi);
        let binder = Binder::HlPower { alpha: 0.5 };
        let mut table = sa_table_for(&multi, binder);
        let (fb, t) = bind(g, &sched, &rb, rc, binder, &mut table);
        let r = measure(g, &sched, &rb, &fb, rc, binder, &multi, t);
        rows.push(vec![
            g.name().to_string(),
            format!("{}", r.schedule_steps),
            format!("{}", r.fus_mul),
            if r.meets_constraint { "yes".into() } else { "NO".into() },
            format!("{:.2}", r.power.dynamic_power_mw),
        ]);
    }
    println!(
        "{}",
        render_table(&["Bench", "steps", "mults", "meets rc", "mW"], &rows)
    );
}
