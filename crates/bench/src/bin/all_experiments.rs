//! Runs the complete experiment suite (Tables 1–4, Figure 3, and the
//! baseline-strength ablation) in one pass, sharing bindings between
//! tables, and prints a combined report. This is the binary behind
//! EXPERIMENTS.md.
//!
//! ```text
//! cargo run --release -p hlpower-bench --bin all_experiments [-- --fast]
//! ```

use cdfg::FuType;
use hlpower::flow::{bind, measure, prepare, sa_table_for};
use hlpower::{Binder, FlowResult};
use hlpower_bench::{pct_change, render_table, Args, PAPER_TABLE3, PAPER_TABLE4};

fn main() {
    let args = Args::parse();
    let suite = args.suite();

    // ---- Table 1 ----------------------------------------------------------
    let mut rows = Vec::new();
    for (g, _) in &suite {
        let p = cdfg::profile(g.name()).expect("known");
        rows.push(vec![
            g.name().to_string(),
            g.inputs().len().to_string(),
            g.outputs().len().to_string(),
            g.op_count(FuType::AddSub).to_string(),
            g.op_count(FuType::Mul).to_string(),
            format!("{}/{}", p.paper_edges, g.num_edges()),
        ]);
    }
    println!("\n=== Table 1: Benchmark Profiles (edges: paper/ours) ===");
    println!(
        "{}",
        render_table(&["Bench", "PIs", "POs", "Adds", "Mults", "Edges"], &rows)
    );

    // ---- Full flow for the three headline binders ------------------------
    let binders =
        [Binder::Lopass, Binder::HlPower { alpha: 1.0 }, Binder::HlPower { alpha: 0.5 }];
    let mut results: Vec<Vec<FlowResult>> = Vec::new();
    for (g, rc) in &suite {
        let (sched, rb) = prepare(g, rc, &args.flow);
        let mut per_binder = Vec::new();
        for binder in binders {
            eprintln!("  flow: {} / {}", g.name(), binder.label());
            let mut table = sa_table_for(&args.flow, binder);
            let (fb, t) = bind(g, &sched, &rb, rc, binder, &mut table);
            per_binder.push(measure(g, &sched, &rb, &fb, rc, binder, &args.flow, t));
        }
        results.push(per_binder);
    }

    // ---- Table 2 ----------------------------------------------------------
    let mut rows = Vec::new();
    for ((g, rc), per) in suite.iter().zip(&results) {
        let hlp = &per[2];
        rows.push(vec![
            g.name().to_string(),
            rc.addsub.to_string(),
            rc.mul.to_string(),
            hlp.schedule_steps.to_string(),
            hlp.registers.to_string(),
            format!("{:.3}", hlp.bind_time.as_secs_f64()),
        ]);
    }
    println!("\n=== Table 2: Constraints, Schedule, Registers, HLPower Runtime ===");
    println!(
        "{}",
        render_table(&["Bench", "Add", "Mult", "Cycle", "Reg", "Runtime(s)"], &rows)
    );

    // ---- Table 3 ----------------------------------------------------------
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 5];
    for ((g, _), per) in suite.iter().zip(&results) {
        let (lop, hlp) = (&per[0], &per[2]);
        let paper = PAPER_TABLE3.iter().find(|(n, ..)| *n == g.name()).expect("known");
        let d_pow = pct_change(lop.power.dynamic_power_mw, hlp.power.dynamic_power_mw);
        let d_clk = pct_change(lop.power.clock_period_ns, hlp.power.clock_period_ns);
        let d_lut = pct_change(lop.luts as f64, hlp.luts as f64);
        let d_mux = hlp.mux.largest as f64 - lop.mux.largest as f64;
        let d_len = pct_change(lop.mux.length as f64, hlp.mux.length as f64);
        sums[0] += d_pow;
        sums[1] += d_clk;
        sums[2] += d_lut;
        sums[3] += d_mux;
        sums[4] += d_len;
        let paper_dpow = pct_change(paper.1 .0, paper.1 .1);
        rows.push(vec![
            g.name().to_string(),
            format!("{:.1}/{:.1}", lop.power.dynamic_power_mw, hlp.power.dynamic_power_mw),
            format!("{}/{}", lop.luts, hlp.luts),
            format!("{}/{}", lop.mux.largest, hlp.mux.largest),
            format!("{}/{}", lop.mux.length, hlp.mux.length),
            format!("{d_pow:+.1}"),
            format!("{paper_dpow:+.1}"),
            format!("{d_clk:+.1}"),
            format!("{d_lut:+.1}"),
            format!("{d_mux:+.0}"),
            format!("{d_len:+.1}"),
        ]);
    }
    let n = suite.len().max(1) as f64;
    rows.push(vec![
        "Average".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:+.1}", sums[0] / n),
        "-19.3".into(),
        format!("{:+.1}", sums[1] / n),
        format!("{:+.1}", sums[2] / n),
        format!("{:+.1}", sums[3] / n),
        format!("{:+.1}", sums[4] / n),
    ]);
    println!("\n=== Table 3: LOPASS vs HLPower(a=0.5) ===");
    println!(
        "{}",
        render_table(
            &[
                "Bench", "Pow mW L/H", "LUTs L/H", "LrgMUX", "MUXLen", "dPow%",
                "dPow%(p)", "dClk%", "dLUT%", "dMUX", "dLen%",
            ],
            &rows
        )
    );

    // ---- Table 4 ----------------------------------------------------------
    let mut rows = Vec::new();
    for ((g, _), per) in suite.iter().zip(&results) {
        let paper = PAPER_TABLE4.iter().find(|(n, ..)| *n == g.name()).expect("known");
        rows.push(vec![
            g.name().to_string(),
            format!("{:.1}/{:.1}", per[0].mux.muxdiff_mean(), per[0].mux.muxdiff_variance()),
            format!("{:.1}/{:.1}", per[1].mux.muxdiff_mean(), per[1].mux.muxdiff_variance()),
            format!("{:.1}/{:.1}", per[2].mux.muxdiff_mean(), per[2].mux.muxdiff_variance()),
            format!("{}", per[2].mux.num_fu_muxes()),
            format!(
                "{:.1}/{:.1} {:.1}/{:.1} {:.1}/{:.1} {}",
                paper.1 .0, paper.1 .1, paper.2 .0, paper.2 .1, paper.3 .0, paper.3 .1, paper.4
            ),
        ]);
    }
    println!("\n=== Table 4: muxDiff mean/var (LOPASS, a=1, a=0.5) ===");
    println!(
        "{}",
        render_table(
            &["Bench", "LOPASS", "a=1", "a=0.5", "#muxes", "paper (L, a1, a05, #)"],
            &rows
        )
    );

    // ---- Figure 3 ---------------------------------------------------------
    println!("\n=== Figure 3: average toggle rate (M transitions/s) ===");
    println!("benchmark,lopass,hlpower_a1,hlpower_a05");
    let mut tsum = [0.0f64; 3];
    for ((g, _), per) in suite.iter().zip(&results) {
        println!(
            "{},{:.2},{:.2},{:.2}",
            g.name(),
            per[0].power.avg_toggle_rate_mhz,
            per[1].power.avg_toggle_rate_mhz,
            per[2].power.avg_toggle_rate_mhz
        );
        for k in 0..3 {
            tsum[k] += per[k].power.avg_toggle_rate_mhz;
        }
    }
    println!(
        "toggle change vs LOPASS: a=1 {:+.1}%, a=0.5 {:+.1}% (paper -8.4%, -21.9%)",
        pct_change(tsum[0], tsum[1]),
        pct_change(tsum[0], tsum[2])
    );

    // ---- Baseline-strength ablation (beyond the paper) --------------------
    println!("\n=== Ablation: stronger interconnect baselines (power mW) ===");
    let mut rows = Vec::new();
    for ((g, rc), per) in suite.iter().zip(&results) {
        let (sched, rb) = prepare(g, rc, &args.flow);
        let mut cells = vec![g.name().to_string(), format!("{:.1}", per[0].power.dynamic_power_mw)];
        for binder in [Binder::LopassInterconnect, Binder::LopassAnnealed] {
            eprintln!("  ablation: {} / {}", g.name(), binder.label());
            let mut table = sa_table_for(&args.flow, binder);
            let (fb, t) = bind(g, &sched, &rb, rc, binder, &mut table);
            let r = measure(g, &sched, &rb, &fb, rc, binder, &args.flow, t);
            cells.push(format!("{:.1}", r.power.dynamic_power_mw));
        }
        cells.push(format!("{:.1}", per[1].power.dynamic_power_mw));
        cells.push(format!("{:.1}", per[2].power.dynamic_power_mw));
        rows.push(cells);
    }
    println!(
        "{}",
        render_table(
            &["Bench", "LOPASS", "LOPASS-ic", "LOPASS-sa", "HLP a=1", "HLP a=0.5"],
            &rows
        )
    );
}
