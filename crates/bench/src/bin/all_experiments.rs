//! Runs the complete experiment suite (Tables 1–4, Figure 3, and the
//! baseline-strength ablation) in one pipeline pass and prints a combined
//! report. This is the binary behind EXPERIMENTS.md.
//!
//! Every benchmark × binder job runs through the shared [`hlpower::Pipeline`]:
//! schedules and register bindings are computed once per benchmark, SA
//! estimates are pooled across all jobs, and the fan-out width is set
//! with `--jobs`. Stdout is byte-identical for any `--jobs` value —
//! wall-clock timing and progress go to stderr.
//!
//! ```text
//! cargo run --release -p hlpower-bench --bin all_experiments [-- --fast --jobs 4]
//! ```

use cdfg::FuType;
use hlpower::{Binder, FlowResult};
use hlpower_bench::{pct_change, render_table, Args, PAPER_TABLE3, PAPER_TABLE4};

/// The five binders of the combined report, in result-column order.
const BINDERS: [Binder; 5] = [
    Binder::Lopass,
    Binder::HlPower { alpha: 1.0 },
    Binder::HlPower { alpha: 0.5 },
    Binder::LopassInterconnect,
    Binder::LopassAnnealed,
];
const LOP: usize = 0;
const A1: usize = 1;
const A05: usize = 2;
const IC: usize = 3;
const SA: usize = 4;

fn main() {
    let args = Args::parse();
    hlpower_bench::reject_binder_flag(&args, "all_experiments");
    let suite = args.suite();

    // ---- Table 1 ----------------------------------------------------------
    let mut rows = Vec::new();
    for (g, _) in &suite {
        let p = cdfg::profile(g.name()).expect("known");
        rows.push(vec![
            g.name().to_string(),
            g.inputs().len().to_string(),
            g.outputs().len().to_string(),
            g.op_count(FuType::AddSub).to_string(),
            g.op_count(FuType::Mul).to_string(),
            format!("{}/{}", p.paper_edges, g.num_edges()),
        ]);
    }
    println!("\n=== Table 1: Benchmark Profiles (edges: paper/ours) ===");
    println!(
        "{}",
        render_table(&["Bench", "PIs", "POs", "Adds", "Mults", "Edges"], &rows)
    );

    // ---- One service pass for every table ---------------------------------
    let (service, results) = args.run_matrix(&suite, &BINDERS);

    // ---- Table 2 ----------------------------------------------------------
    // The runtime proxy is the SA-query count (deterministic); wall-clock
    // seconds go to stderr so stdout is reproducible across --jobs.
    let mut rows = Vec::new();
    for ((g, rc), per) in suite.iter().zip(&results) {
        let hlp = &per[A05];
        eprintln!(
            "  bind wall-clock {}: {:.3}s",
            g.name(),
            hlp.bind_time.as_secs_f64()
        );
        rows.push(vec![
            g.name().to_string(),
            rc.addsub.to_string(),
            rc.mul.to_string(),
            hlp.schedule_steps.to_string(),
            hlp.registers.to_string(),
            hlp.sa_queries.to_string(),
        ]);
    }
    println!("\n=== Table 2: Constraints, Schedule, Registers, HLPower SA queries ===");
    println!(
        "{}",
        render_table(&["Bench", "Add", "Mult", "Cycle", "Reg", "SAq"], &rows)
    );

    // ---- Table 3 ----------------------------------------------------------
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 5];
    for ((g, _), per) in suite.iter().zip(&results) {
        let (lop, hlp) = (&per[LOP], &per[A05]);
        let paper = PAPER_TABLE3
            .iter()
            .find(|(n, ..)| *n == g.name())
            .expect("known");
        let d_pow = pct_change(lop.power.dynamic_power_mw, hlp.power.dynamic_power_mw);
        let d_clk = pct_change(lop.power.clock_period_ns, hlp.power.clock_period_ns);
        let d_lut = pct_change(lop.luts as f64, hlp.luts as f64);
        let d_mux = hlp.mux.largest as f64 - lop.mux.largest as f64;
        let d_len = pct_change(lop.mux.length as f64, hlp.mux.length as f64);
        sums[0] += d_pow;
        sums[1] += d_clk;
        sums[2] += d_lut;
        sums[3] += d_mux;
        sums[4] += d_len;
        let paper_dpow = pct_change(paper.1 .0, paper.1 .1);
        rows.push(vec![
            g.name().to_string(),
            format!(
                "{:.1}/{:.1}",
                lop.power.dynamic_power_mw, hlp.power.dynamic_power_mw
            ),
            format!("{}/{}", lop.luts, hlp.luts),
            format!("{}/{}", lop.mux.largest, hlp.mux.largest),
            format!("{}/{}", lop.mux.length, hlp.mux.length),
            format!("{d_pow:+.1}"),
            format!("{paper_dpow:+.1}"),
            format!("{d_clk:+.1}"),
            format!("{d_lut:+.1}"),
            format!("{d_mux:+.0}"),
            format!("{d_len:+.1}"),
        ]);
    }
    let n = suite.len().max(1) as f64;
    rows.push(vec![
        "Average".into(),
        String::new(),
        String::new(),
        String::new(),
        String::new(),
        format!("{:+.1}", sums[0] / n),
        "-19.3".into(),
        format!("{:+.1}", sums[1] / n),
        format!("{:+.1}", sums[2] / n),
        format!("{:+.1}", sums[3] / n),
        format!("{:+.1}", sums[4] / n),
    ]);
    println!("\n=== Table 3: LOPASS vs HLPower(a=0.5) ===");
    println!(
        "{}",
        render_table(
            &[
                "Bench",
                "Pow mW L/H",
                "LUTs L/H",
                "LrgMUX",
                "MUXLen",
                "dPow%",
                "dPow%(p)",
                "dClk%",
                "dLUT%",
                "dMUX",
                "dLen%",
            ],
            &rows
        )
    );

    // ---- Table 4 ----------------------------------------------------------
    let mut rows = Vec::new();
    for ((g, _), per) in suite.iter().zip(&results) {
        let paper = PAPER_TABLE4
            .iter()
            .find(|(n, ..)| *n == g.name())
            .expect("known");
        let md = |r: &FlowResult| {
            format!(
                "{:.1}/{:.1}",
                r.mux.muxdiff_mean(),
                r.mux.muxdiff_variance()
            )
        };
        rows.push(vec![
            g.name().to_string(),
            md(&per[LOP]),
            md(&per[A1]),
            md(&per[A05]),
            format!("{}", per[A05].mux.num_fu_muxes()),
            format!(
                "{:.1}/{:.1} {:.1}/{:.1} {:.1}/{:.1} {}",
                paper.1 .0, paper.1 .1, paper.2 .0, paper.2 .1, paper.3 .0, paper.3 .1, paper.4
            ),
        ]);
    }
    println!("\n=== Table 4: muxDiff mean/var (LOPASS, a=1, a=0.5) ===");
    println!(
        "{}",
        render_table(
            &[
                "Bench",
                "LOPASS",
                "a=1",
                "a=0.5",
                "#muxes",
                "paper (L, a1, a05, #)"
            ],
            &rows
        )
    );

    // ---- Figure 3 ---------------------------------------------------------
    println!("\n=== Figure 3: average toggle rate (M transitions/s) ===");
    println!("benchmark,lopass,hlpower_a1,hlpower_a05");
    let mut tsum = [0.0f64; 3];
    for ((g, _), per) in suite.iter().zip(&results) {
        println!(
            "{},{:.2},{:.2},{:.2}",
            g.name(),
            per[LOP].power.avg_toggle_rate_mhz,
            per[A1].power.avg_toggle_rate_mhz,
            per[A05].power.avg_toggle_rate_mhz
        );
        for (sum, idx) in tsum.iter_mut().zip([LOP, A1, A05]) {
            *sum += per[idx].power.avg_toggle_rate_mhz;
        }
    }
    println!(
        "toggle change vs LOPASS: a=1 {:+.1}%, a=0.5 {:+.1}% (paper -8.4%, -21.9%)",
        pct_change(tsum[0], tsum[1]),
        pct_change(tsum[0], tsum[2])
    );

    // ---- Baseline-strength ablation (beyond the paper) --------------------
    // The stronger baselines came out of the same pipeline pass: nothing
    // is re-prepared or re-bound here.
    println!("\n=== Ablation: stronger interconnect baselines (power mW) ===");
    let rows: Vec<Vec<String>> = suite
        .iter()
        .zip(&results)
        .map(|((g, _), per)| {
            let mw = |i: usize| format!("{:.1}", per[i].power.dynamic_power_mw);
            vec![
                g.name().to_string(),
                mw(LOP),
                mw(IC),
                mw(SA),
                mw(A1),
                mw(A05),
            ]
        })
        .collect();
    println!(
        "{}",
        render_table(
            &[
                "Bench",
                "LOPASS",
                "LOPASS-ic",
                "LOPASS-sa",
                "HLP a=1",
                "HLP a=0.5"
            ],
            &rows
        )
    );

    // Sharing evidence (stderr: diagnostics, not part of the report).
    // Every benchmark's front end was either computed once or served
    // from the artifact store — never recomputed per binder.
    let s = service.stats();
    debug_assert_eq!(
        (s.stages.schedules + s.store.prepared_hits) as usize,
        suite.len()
    );
    eprintln!(
        "pipeline: {} schedules / {} fu-binds for {} benchmarks x {} binders",
        s.stages.schedules,
        s.stages.fu_bindings,
        suite.len(),
        BINDERS.len()
    );
}
