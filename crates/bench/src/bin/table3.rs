//! Regenerates **Table 3**: dynamic power, clock period, LUTs, largest
//! MUX, and MUX length for LOPASS vs HLPower (α = 0.5), with per-benchmark
//! percentage changes and the suite averages the paper reports.
//!
//! ```text
//! cargo run --release -p hlpower-bench --bin table3 [-- --fast --jobs 4 | --width 16 ...]
//! ```

use hlpower::Binder;
use hlpower_bench::{pct_change, render_table, Args};

fn main() {
    let args = Args::parse();
    hlpower_bench::reject_binder_flag(&args, "table3");
    let suite = args.suite();
    let binders = [Binder::Lopass, Binder::HlPower { alpha: 0.5 }];
    let (_, results) = args.run_matrix(&suite, &binders);
    let mut rows = Vec::new();
    let mut sums = [0.0f64; 5]; // power%, clk%, lut%, largest mux delta, mux len %
    let mut n = 0usize;
    for ((g, _), per) in suite.iter().zip(&results) {
        let (lop, hlp) = (&per[0], &per[1]);
        let d_pow = pct_change(lop.power.dynamic_power_mw, hlp.power.dynamic_power_mw);
        let d_clk = pct_change(lop.power.clock_period_ns, hlp.power.clock_period_ns);
        let d_lut = pct_change(lop.luts as f64, hlp.luts as f64);
        let d_mux = hlp.mux.largest as f64 - lop.mux.largest as f64;
        let d_len = pct_change(lop.mux.length as f64, hlp.mux.length as f64);
        sums[0] += d_pow;
        sums[1] += d_clk;
        sums[2] += d_lut;
        sums[3] += d_mux;
        sums[4] += d_len;
        n += 1;
        rows.push(vec![
            g.name().to_string(),
            format!(
                "{:.1}/{:.1}",
                lop.power.dynamic_power_mw, hlp.power.dynamic_power_mw
            ),
            format!(
                "{:.1}/{:.1}",
                lop.power.clock_period_ns, hlp.power.clock_period_ns
            ),
            format!("{}/{}", lop.luts, hlp.luts),
            format!("{}/{}", lop.mux.largest, hlp.mux.largest),
            format!("{}/{}", lop.mux.length, hlp.mux.length),
            format!("{d_pow:.2}"),
            format!("{d_clk:.2}"),
            format!("{d_lut:.2}"),
            format!("{d_mux:+.0}"),
            format!("{d_len:.1}"),
        ]);
    }
    if n > 0 {
        rows.push(vec![
            "Average".into(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            String::new(),
            format!("{:.2}", sums[0] / n as f64),
            format!("{:.2}", sums[1] / n as f64),
            format!("{:.2}", sums[2] / n as f64),
            format!("{:+.1}", sums[3] / n as f64),
            format!("{:.1}", sums[4] / n as f64),
        ]);
    }
    println!("\nTable 3: LOPASS vs HLPower (alpha = 0.5)");
    println!(
        "{}",
        render_table(
            &[
                "Bench",
                "DynPow(mW)",
                "ClkPer(ns)",
                "LUTs",
                "LrgMUX",
                "MUXLen",
                "dPow(%)",
                "dClk(%)",
                "dLUT(%)",
                "dMUX",
                "dLen(%)",
            ],
            &rows
        )
    );
    println!("Paper averages: power -19.28%, clock +0.58%, LUTs -9.11%, largest MUX -2.6, MUX length -7.2%");
}
