//! Gate-level simulation for the HLPower reproduction.
//!
//! Three simulators over the shared [`netlist::Netlist`] IR:
//!
//! * [`Evaluator`] — zero-delay functional evaluation (the verification
//!   oracle for mapping and datapath elaboration);
//! * [`CycleSim`] — event-driven **unit-delay** simulation that counts
//!   every output transition per node per clock cycle, split into
//!   functional transitions and glitches;
//! * [`WordSim`] — the **word-parallel (bit-sliced)** unit-delay
//!   simulator: up to 64 independent lanes per `u64` node word, each lane
//!   bit-exact with a [`CycleSim`] run seeded via [`lane_seed`].
//!
//! Together with the seeded vector drivers ([`run_random`], [`run_with`])
//! this substitutes for the paper's Quartus II simulation + PowerPlay
//! toggle measurement: the unit-delay model is the same delay model the
//! paper's switching-activity estimator assumes, so estimated and
//! simulated glitching can be compared directly.
//!
//! # Examples
//!
//! Measure glitching of a two-level AND under random stimulus:
//!
//! ```
//! use netlist::{Netlist, TruthTable};
//!
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let c = nl.add_input("c");
//! let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
//! let h = nl.add_logic("h", vec![g, c], TruthTable::and(2));
//! nl.mark_output("o", h);
//! let stats = gatesim::run_random(&nl, 1000, 42);
//! assert!(stats.glitch_transitions > 0, "skewed arrivals glitch");
//! ```

#![warn(missing_docs)]

pub mod eval;
pub mod event;
pub mod vcd;
pub mod vectors;
pub mod wordsim;

pub use eval::Evaluator;
pub use event::{CycleReport, CycleSim, SimStats};
pub use vcd::dump_vcd;
pub use vectors::{lane_seed, run_random, run_with, VectorSource, WordVectorSource};
pub use wordsim::{run_random_word, WordSim, MAX_LANES};
