//! Gate-level simulation for the HLPower reproduction.
//!
//! Three simulators over the shared [`netlist::Netlist`] IR:
//!
//! * [`Evaluator`] — zero-delay functional evaluation (the verification
//!   oracle for mapping and datapath elaboration);
//! * [`CycleSim`] — event-driven **unit-delay** simulation that counts
//!   every output transition per node per clock cycle, split into
//!   functional transitions and glitches;
//! * [`WordSim`] — the **word-parallel (bit-sliced)** unit-delay
//!   simulator: up to 64 independent lanes per `u64` node word, each lane
//!   bit-exact with a [`CycleSim`] run seeded via [`lane_seed`];
//! * [`SlabSim`] — the **multi-word slab** generalization: up to
//!   [`MAX_SLAB_LANES`] (512) lanes as `[u64; W]` chunks per node, with
//!   autovectorized straight-line kernels and an activity-gated sparse
//!   sweep that skips slab words whose fanins are quiescent. Lane `L`
//!   is bit-exact with the scalar run seeded `lane_seed(seed, L)`, and
//!   word `j` with a [`WordSim`] run at lane offset `64 j`.
//!
//! Together with the seeded vector drivers ([`run_random`], [`run_with`])
//! this substitutes for the paper's Quartus II simulation + PowerPlay
//! toggle measurement: the unit-delay model is the same delay model the
//! paper's switching-activity estimator assumes, so estimated and
//! simulated glitching can be compared directly.
//!
//! # Examples
//!
//! Measure glitching of a two-level AND under random stimulus:
//!
//! ```
//! use netlist::{Netlist, TruthTable};
//!
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let c = nl.add_input("c");
//! let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
//! let h = nl.add_logic("h", vec![g, c], TruthTable::and(2));
//! nl.mark_output("o", h);
//! let stats = gatesim::run_random(&nl, 1000, 42);
//! assert!(stats.glitch_transitions > 0, "skewed arrivals glitch");
//! ```

#![warn(missing_docs)]

pub mod eval;
pub mod event;
pub mod slabsim;
pub mod vcd;
pub mod vectors;
pub mod wordsim;

pub use eval::Evaluator;
pub use event::{CycleReport, CycleSim, SimStats};
pub use slabsim::{
    run_random_slab, run_random_slab_with_activity, SlabActivity, SlabSim, MAX_SLAB_LANES,
    MAX_SLAB_WORDS,
};
pub use vcd::dump_vcd;
pub use vectors::{
    lane_seed, run_random, run_with, SlabVectorSource, VectorSource, WordVectorSource,
};
pub use wordsim::{run_random_word, WordSim, MAX_LANES};
