//! Word-parallel (bit-sliced) unit-delay simulation.
//!
//! [`WordSim`] packs up to 64 **independent simulation lanes** into one
//! `u64` per node: lane `L` of every node word is a complete, self-
//! contained unit-delay simulation identical to what [`crate::CycleSim`]
//! would compute for that lane's stimulus. LUT rows are evaluated bitwise
//! across all lanes at once, and transitions are counted with a single
//! `popcount` of `old ^ new` per changed node — so one pass through the
//! event wheel advances up to 64 random-vector streams.
//!
//! Lane-exactness is the module's contract, not an approximation:
//!
//! * the event wheel schedules a node whenever **any** lane's fanin
//!   changed, but a lane in which no fanin changed re-evaluates to its
//!   current value, so no spurious transitions are ever counted;
//! * the functional/glitch split is taken per lane (`popcount` of
//!   settled-XOR-cycle-start), exactly as [`crate::CycleSim`] splits a
//!   single lane;
//! * with `lanes == 1` and the same vector stream, the statistics are
//!   **byte-identical** to the scalar simulator's (the differential tests
//!   assert this), and with `lanes == N` each lane reproduces the scalar
//!   run seeded with [`crate::lane_seed`]`(seed, lane)`.
//!
//! [`SimStats::cycles`] counts *lane-cycles* (`steps × lanes`), so the
//! downstream power model sees a 64-lane run as 64× the vector budget at
//! roughly the wall-clock cost of one scalar stream.
//!
//! # Examples
//!
//! ```
//! use netlist::{Netlist, TruthTable};
//!
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let c = nl.add_input("c");
//! let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
//! let h = nl.add_logic("h", vec![g, c], TruthTable::and(2));
//! nl.mark_output("o", h);
//! // 64 lanes x 200 steps = 12800 simulated vectors.
//! let stats = gatesim::run_random_word(&nl, 200, 42, 64);
//! assert_eq!(stats.cycles, 200 * 64);
//! assert!(stats.glitch_transitions > 0, "skewed arrivals glitch");
//! ```

use crate::eval::Evaluator;
use crate::event::{CycleReport, SimStats};
use crate::vectors::WordVectorSource;
use netlist::{Netlist, NodeId, NodeKind, TruthTable};

/// Maximum number of lanes a [`WordSim`] can pack into its `u64` words.
pub const MAX_LANES: usize = 64;

/// Evaluates one truth table bitwise across all lanes: OR over the true
/// rows of the AND of each fanin word (inverted where the row has a 0).
/// `mask` limits the result to the active lanes.
pub(crate) fn eval_word(table: &TruthTable, fanins: &[u64], mask: u64) -> u64 {
    let mut out = 0u64;
    for row in 0..(1u32 << fanins.len()) {
        if !table.eval(row) {
            continue;
        }
        let mut m = mask;
        for (k, &w) in fanins.iter().enumerate() {
            m &= if (row >> k) & 1 == 1 { w } else { !w };
            if m == 0 {
                break;
            }
        }
        out |= m;
    }
    out
}

/// Unit-delay, cycle-based simulator over up to [`MAX_LANES`] parallel
/// lanes.
///
/// Each [`WordSim::step`] models one clock cycle **in every lane
/// simultaneously**: latches capture their `D` words and primary inputs
/// take their new words at time 0, then changes propagate with one unit
/// of delay per logic level while per-lane transitions are accumulated.
#[derive(Debug)]
pub struct WordSim<'a> {
    nl: &'a Netlist,
    fanouts: Vec<Vec<NodeId>>,
    lanes: usize,
    mask: u64,
    values: Vec<u64>,
    cycle_start: Vec<u64>,
    stats: SimStats,
    steps_done: u64,
    // time wheel state (mirrors `CycleSim`)
    wheel: Vec<Vec<NodeId>>,
    scheduled_at: Vec<u32>,
    touched: Vec<NodeId>,
    touch_stamp: Vec<u64>,
    // scratch for the per-node fanin words
    fanin_words: Vec<u64>,
}

impl<'a> WordSim<'a> {
    /// Creates a simulator with latches at init values, inputs low, and
    /// combinational logic settled in every lane (no transitions counted
    /// for this initialization).
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds [`MAX_LANES`], or if the netlist
    /// fails [`Netlist::check`].
    pub fn new(nl: &'a Netlist, lanes: usize) -> Self {
        assert!(
            (1..=MAX_LANES).contains(&lanes),
            "lanes must be in 1..={MAX_LANES}, got {lanes}"
        );
        let mask = if lanes == MAX_LANES {
            u64::MAX
        } else {
            (1u64 << lanes) - 1
        };
        // The zero-delay oracle validates the netlist and provides the
        // settled initial state, broadcast into every lane.
        let ev = Evaluator::new(nl);
        let values: Vec<u64> = ev
            .values()
            .iter()
            .map(|&v| if v { mask } else { 0 })
            .collect();
        let depth = nl.depth() as usize;
        WordSim {
            nl,
            fanouts: nl.fanouts(),
            lanes,
            mask,
            cycle_start: values.clone(),
            values,
            stats: SimStats {
                per_node: vec![0; nl.num_nodes()],
                ..SimStats::default()
            },
            steps_done: 0,
            wheel: vec![Vec::new(); depth + 2],
            scheduled_at: vec![u32::MAX; nl.num_nodes()],
            touched: Vec::new(),
            touch_stamp: vec![0; nl.num_nodes()],
            fanin_words: Vec::new(),
        }
    }

    /// Number of active lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cumulative statistics. [`SimStats::cycles`] counts lane-cycles
    /// (`steps × lanes`); transition counters aggregate over all lanes.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current settled value of a node in one lane.
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes`.
    pub fn value(&self, id: NodeId, lane: usize) -> bool {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (self.values[id.index()] >> lane) & 1 == 1
    }

    /// All lane values of a node, one bit per lane (bit `L` = lane `L`).
    pub fn lane_values(&self, id: NodeId) -> u64 {
        self.values[id.index()]
    }

    /// Reads a little-endian word of node values from one lane.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is wider than 64 or `lane >= lanes`.
    pub fn word(&self, bits: &[NodeId], lane: usize) -> u64 {
        assert!(
            bits.len() <= 64,
            "word read limited to 64 bits, bus has {}",
            bits.len()
        );
        assert!(lane < self.lanes, "lane {lane} out of range");
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| {
            acc | (((self.values[b.index()] >> lane) & 1) << i)
        })
    }

    /// Runs one clock cycle in every lane. `pi_words` holds one `u64` per
    /// primary input (in [`Netlist::inputs`] order) with one bit per lane;
    /// bits above the lane count are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `pi_words.len()` differs from the input count.
    pub fn step(&mut self, pi_words: &[u64]) -> CycleReport {
        let inputs = self.nl.inputs();
        assert_eq!(pi_words.len(), inputs.len(), "one word per primary input");
        self.cycle_start.copy_from_slice(&self.values);
        self.touched.clear();
        self.steps_done += 1;

        let mut report = CycleReport::default();
        // Time 0: latch capture + new PI words, simultaneously.
        let captured: Vec<(NodeId, u64)> = self
            .nl
            .latches()
            .iter()
            .map(|&l| match &self.nl.node(l).kind {
                NodeKind::Latch { data, .. } => (l, self.values[data.index()]),
                _ => unreachable!(),
            })
            .collect();
        for (l, w) in captured {
            self.apply_change(l, w, &mut report);
        }
        let pi_changes: Vec<(NodeId, u64)> = inputs
            .iter()
            .zip(pi_words)
            .map(|(&i, &w)| (i, w & self.mask))
            .collect();
        for (i, w) in pi_changes {
            self.apply_change(i, w, &mut report);
        }

        // Propagate with unit delay; two-phase per time slot so every node
        // scheduled at time t sees its fanins as of time t-1 (in every
        // lane), exactly like the scalar simulator.
        let mut t = 1usize;
        while t < self.wheel.len() {
            if self.wheel[t].is_empty() {
                t += 1;
                continue;
            }
            let batch = std::mem::take(&mut self.wheel[t]);
            let mut updates: Vec<(NodeId, u64)> = Vec::with_capacity(batch.len());
            for id in batch {
                if self.scheduled_at[id.index()] == t as u32 {
                    self.scheduled_at[id.index()] = u32::MAX;
                }
                if let NodeKind::Logic { fanins, table } = &self.nl.node(id).kind {
                    self.fanin_words.clear();
                    self.fanin_words
                        .extend(fanins.iter().map(|f| self.values[f.index()]));
                    let new = eval_word(table, &self.fanin_words, self.mask);
                    if new != self.values[id.index()] {
                        updates.push((id, new));
                    }
                }
            }
            for (id, new) in updates {
                self.apply_update(id, new, t + 1, &mut report);
            }
            t += 1;
        }

        // Functional/glitch split, per lane: a lane whose settled value
        // differs from its value at cycle start contributes one functional
        // transition.
        for &id in &self.touched {
            let diff = (self.values[id.index()] ^ self.cycle_start[id.index()]) & self.mask;
            report.functional += u64::from(diff.count_ones());
        }
        report.glitches = report.transitions - report.functional;
        self.stats.cycles += self.lanes as u64;
        self.stats.total_transitions += report.transitions;
        self.stats.functional_transitions += report.functional;
        self.stats.glitch_transitions += report.glitches;
        report
    }

    fn apply_change(&mut self, id: NodeId, word: u64, report: &mut CycleReport) {
        if self.values[id.index()] != word {
            self.apply_update(id, word, 1, report);
        }
    }

    fn apply_update(&mut self, id: NodeId, word: u64, time: usize, report: &mut CycleReport) {
        let flips = u64::from(((self.values[id.index()] ^ word) & self.mask).count_ones());
        self.values[id.index()] = word;
        report.transitions += flips;
        self.stats.per_node[id.index()] += flips;
        if self.touch_stamp[id.index()] != self.steps_done {
            self.touch_stamp[id.index()] = self.steps_done;
            self.touched.push(id);
        }
        self.schedule_fanouts(id, time);
    }

    fn schedule_fanouts(&mut self, id: NodeId, time: usize) {
        let time = time.min(self.wheel.len() - 1);
        for k in 0..self.fanouts[id.index()].len() {
            let fo = self.fanouts[id.index()][k];
            if matches!(self.nl.node(fo).kind, NodeKind::Logic { .. })
                && self.scheduled_at[fo.index()] != time as u32
            {
                self.scheduled_at[fo.index()] = time as u32;
                self.wheel[time].push(fo);
            }
        }
    }
}

/// Simulates `steps` clock cycles in `lanes` parallel lanes with uniform
/// random primary-input vectors — lane `L` draws its stream from
/// [`crate::lane_seed`]`(seed, L)`, so lane 0 reproduces
/// [`crate::run_random`]`(nl, steps, seed)` exactly — and returns the
/// cumulative statistics (`steps × lanes` lane-cycles).
///
/// # Examples
///
/// ```
/// use netlist::{Netlist, TruthTable};
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
/// nl.mark_output("o", g);
/// let word = gatesim::run_random_word(&nl, 100, 42, 1);
/// let scalar = gatesim::run_random(&nl, 100, 42);
/// assert_eq!(word.total_transitions, scalar.total_transitions);
/// ```
pub fn run_random_word(nl: &Netlist, steps: u64, seed: u64, lanes: usize) -> SimStats {
    let mut sim = WordSim::new(nl, lanes);
    let mut src = WordVectorSource::new(seed, lanes);
    let mut words = vec![0u64; nl.inputs().len()];
    for _ in 0..steps {
        src.fill_words(&mut words);
        sim.step(&words);
    }
    sim.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::CycleSim;
    use crate::vectors::{lane_seed, VectorSource};
    use netlist::{cells, Netlist, TruthTable};

    #[test]
    fn eval_word_matches_truth_table() {
        let xor3 = TruthTable::xor(3);
        // Lane L of each fanin word carries row L's input assignment.
        let mut fanins = [0u64; 3];
        for row in 0..8u32 {
            for (k, w) in fanins.iter_mut().enumerate() {
                *w |= u64::from((row >> k) & 1) << row;
            }
        }
        let out = eval_word(&xor3, &fanins, 0xFF);
        for row in 0..8u32 {
            assert_eq!((out >> row) & 1 == 1, xor3.eval(row), "row {row}");
        }
    }

    #[test]
    fn single_lane_matches_scalar_sim() {
        let mut nl = Netlist::new("m");
        let a: Vec<_> = (0..4).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..4).map(|i| nl.add_input(format!("b{i}"))).collect();
        let p = cells::array_multiplier(&mut nl, "m", &a, &b);
        for (i, s) in p.iter().enumerate() {
            nl.mark_output(format!("p{i}"), *s);
        }
        let scalar = crate::run_random(&nl, 80, 7);
        let word = run_random_word(&nl, 80, 7, 1);
        assert_eq!(word.cycles, scalar.cycles);
        assert_eq!(word.total_transitions, scalar.total_transitions);
        assert_eq!(word.functional_transitions, scalar.functional_transitions);
        assert_eq!(word.glitch_transitions, scalar.glitch_transitions);
        assert_eq!(word.per_node, scalar.per_node);
    }

    #[test]
    fn lanes_decompose_into_scalar_runs() {
        // Every lane of a 4-lane run must replay the scalar simulation
        // seeded with lane_seed(seed, lane), transition for transition.
        let mut nl = Netlist::new("add");
        let a: Vec<_> = (0..3).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..3).map(|i| nl.add_input(format!("b{i}"))).collect();
        let (s, _) = cells::ripple_adder(&mut nl, "add", &a, &b, None);
        for (i, x) in s.iter().enumerate() {
            nl.mark_output(format!("s{i}"), *x);
        }
        let seed = 99;
        let lanes = 4;
        let word = run_random_word(&nl, 60, seed, lanes);
        let mut total = 0;
        let mut per_node = vec![0u64; nl.num_nodes()];
        for lane in 0..lanes {
            let scalar = crate::run_random(&nl, 60, lane_seed(seed, lane));
            total += scalar.total_transitions;
            for (acc, x) in per_node.iter_mut().zip(&scalar.per_node) {
                *acc += x;
            }
        }
        assert_eq!(word.total_transitions, total);
        assert_eq!(word.per_node, per_node);
        assert_eq!(word.cycles, 60 * lanes as u64);
    }

    #[test]
    fn latches_capture_per_lane() {
        // 1-bit toggler: q' = q XOR in. Drive lane 0 with in=1 (toggles
        // every cycle) and lane 1 with in=0 (never toggles).
        let mut nl = Netlist::new("t");
        let d = nl.add_input("d");
        let q = nl.add_latch("q", false);
        let x = nl.add_logic("x", vec![q, d], TruthTable::xor(2));
        nl.set_latch_data(q, x);
        nl.mark_output("o", q);
        let mut sim = WordSim::new(&nl, 2);
        let mut q_vals = Vec::new();
        for _ in 0..4 {
            sim.step(&[0b01]);
            q_vals.push((sim.value(q, 0), sim.value(q, 1)));
        }
        assert_eq!(
            q_vals,
            vec![(false, false), (true, false), (false, false), (true, false)],
            "lane 0 toggles, lane 1 holds"
        );
    }

    #[test]
    fn settled_words_match_oracle_in_every_lane() {
        let mut nl = Netlist::new("eq");
        let a: Vec<_> = (0..5).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..5).map(|i| nl.add_input(format!("b{i}"))).collect();
        let p = cells::array_multiplier(&mut nl, "m", &a, &b);
        for (i, s) in p.iter().enumerate() {
            nl.mark_output(format!("p{i}"), *s);
        }
        let lanes = 8;
        let mut sim = WordSim::new(&nl, lanes);
        let mut src = WordVectorSource::new(3, lanes);
        let mut words = vec![0u64; nl.inputs().len()];
        for _ in 0..5 {
            src.fill_words(&mut words);
            sim.step(&words);
        }
        let mut ev = Evaluator::new(&nl);
        for lane in 0..lanes {
            let x = sim.word(&a, lane);
            let y = sim.word(&b, lane);
            ev.set_word(&a, x);
            ev.set_word(&b, y);
            ev.settle();
            assert_eq!(sim.word(&p, lane), ev.word(&p), "lane {lane}: {x}*{y}");
            assert_eq!(sim.word(&p, lane), (x * y) & 31);
        }
    }

    #[test]
    fn fixed_seed_runs_are_repeatable() {
        let mut nl = Netlist::new("r");
        let a: Vec<_> = (0..4).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..4).map(|i| nl.add_input(format!("b{i}"))).collect();
        let p = cells::array_multiplier(&mut nl, "m", &a, &b);
        for (i, s) in p.iter().enumerate() {
            nl.mark_output(format!("p{i}"), *s);
        }
        let s1 = run_random_word(&nl, 50, 11, 64);
        let s2 = run_random_word(&nl, 50, 11, 64);
        assert_eq!(s1.total_transitions, s2.total_transitions);
        assert_eq!(s1.glitch_transitions, s2.glitch_transitions);
        assert_eq!(s1.per_node, s2.per_node);
    }

    #[test]
    #[should_panic(expected = "lanes must be in 1..=64")]
    fn zero_lanes_rejected() {
        let mut nl = Netlist::new("z");
        let a = nl.add_input("a");
        let g = nl.add_logic("g", vec![a], TruthTable::buffer());
        nl.mark_output("o", g);
        WordSim::new(&nl, 0);
    }

    #[test]
    #[should_panic(expected = "lanes must be in 1..=64")]
    fn too_many_lanes_rejected() {
        let mut nl = Netlist::new("z");
        let a = nl.add_input("a");
        let g = nl.add_logic("g", vec![a], TruthTable::buffer());
        nl.mark_output("o", g);
        WordSim::new(&nl, 65);
    }

    #[test]
    fn lane_streams_are_independent() {
        // A buffer driven by one input: per-lane toggles must equal the
        // toggles of that lane's own vector stream.
        let mut nl = Netlist::new("b");
        let a = nl.add_input("a");
        let g = nl.add_logic("g", vec![a], TruthTable::buffer());
        nl.mark_output("o", g);
        let lanes = 16;
        let seed = 5;
        let mut sim = WordSim::new(&nl, lanes);
        let mut src = WordVectorSource::new(seed, lanes);
        let mut words = vec![0u64; 1];
        for _ in 0..40 {
            src.fill_words(&mut words);
            sim.step(&words);
        }
        for lane in 0..lanes {
            let mut reference = VectorSource::new(lane_seed(seed, lane));
            let mut prev = false;
            let mut toggles = 0u64;
            for _ in 0..40 {
                let v = reference.next_vector(1)[0];
                if v != prev {
                    toggles += 1;
                }
                prev = v;
            }
            assert_eq!(sim.value(a, lane), prev, "lane {lane} final value");
            // The input and the buffer each toggle once per stream flip.
            let _ = toggles; // per-lane per-node counters are aggregate-only
        }
    }

    #[test]
    fn scalar_cyclesim_agrees_on_final_state() {
        let mut nl = Netlist::new("f");
        let a: Vec<_> = (0..3).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..3).map(|i| nl.add_input(format!("b{i}"))).collect();
        let (s, _) = cells::ripple_adder(&mut nl, "add", &a, &b, None);
        for (i, x) in s.iter().enumerate() {
            nl.mark_output(format!("s{i}"), *x);
        }
        let mut scalar = CycleSim::new(&nl);
        let mut word = WordSim::new(&nl, 1);
        let mut src = VectorSource::new(17);
        for _ in 0..30 {
            let bits = src.next_vector(nl.inputs().len());
            scalar.step(&bits);
            let words: Vec<u64> = bits.iter().map(|&b| b as u64).collect();
            word.step(&words);
        }
        for (id, _) in nl.nodes() {
            assert_eq!(scalar.value(id), word.value(id, 0), "{id}");
        }
    }
}
