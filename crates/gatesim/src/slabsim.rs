//! Multi-word slab simulation: past-64-lane bit slicing with an
//! activity-gated sparse sweep.
//!
//! [`SlabSim`] generalizes [`crate::WordSim`] from one `u64` per node to
//! a **slab** of `W` words per node (`[u64; W]`, up to
//! [`MAX_SLAB_LANES`] = 512 lanes at `W = 8`). The inner evaluation
//! kernel is written as straight-line per-word loops over a
//! const-generic `W`, which the compiler unrolls and autovectorizes —
//! one LUT-row pass evaluates all `W × 64` lanes with SIMD-width AND/OR
//! chains instead of `W` separate event-wheel passes.
//!
//! On top of the wide kernel sits an **activity gate**: every node
//! carries a per-word dirty bitmask (`u8`, one bit per slab word) that
//! accumulates *which words of which fanins actually changed*. When a
//! scheduled node is evaluated, only its dirty words are recomputed — a
//! word in which no fanin changed would re-evaluate to its current
//! value, so skipping it is **exact**, not an approximation (the same
//! argument that makes [`crate::WordSim`]'s lane re-evaluation free of
//! spurious transitions). Quiescent slab regions therefore cost nothing
//! beyond a mask test, and [`SlabSim::activity`] reports the measured
//! skip rate.
//!
//! Lane-exactness is inherited unchanged from the single-word engine:
//!
//! * global lane `L` lives in word `L / 64`, bit `L % 64`, and draws its
//!   stimulus from [`crate::lane_seed`]`(seed, L)` — so lane 0 of word 0
//!   replays the scalar stream byte for byte;
//! * any `N`-lane slab run is the lane-decomposition of its 64-lane
//!   sub-runs: word `j` reproduces a [`crate::WordSim`] run whose lanes
//!   are seeded with offset `64 j` (the differential tests assert both
//!   identities).
//!
//! # Examples
//!
//! ```
//! use netlist::{Netlist, TruthTable};
//!
//! let mut nl = Netlist::new("demo");
//! let a = nl.add_input("a");
//! let b = nl.add_input("b");
//! let c = nl.add_input("c");
//! let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
//! let h = nl.add_logic("h", vec![g, c], TruthTable::and(2));
//! nl.mark_output("o", h);
//! // 256 lanes x 50 steps = 12800 simulated vectors in 50 wheel passes.
//! let stats = gatesim::run_random_slab(&nl, 50, 42, 256);
//! assert_eq!(stats.cycles, 50 * 256);
//! ```

use crate::eval::Evaluator;
use crate::event::{CycleReport, SimStats};
use crate::vectors::SlabVectorSource;
use crate::wordsim::eval_word;
use netlist::{Netlist, NodeId, NodeKind, TruthTable};

/// Maximum number of slab words per node (the dirty mask is a `u8`).
pub const MAX_SLAB_WORDS: usize = 8;

/// Maximum number of lanes a slab simulation can carry
/// ([`MAX_SLAB_WORDS`] × 64).
pub const MAX_SLAB_LANES: usize = MAX_SLAB_WORDS * 64;

/// Activity-gate counters of one slab run: how many node-words the gate
/// actually evaluated versus how many the scheduled nodes offered
/// (`scheduled nodes × W`). The difference is work a non-gated engine
/// would have spent re-computing words whose fanins were quiescent.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct SlabActivity {
    /// Node-words recomputed by the evaluation kernel.
    pub words_evaluated: u64,
    /// Node-words the scheduled nodes would have recomputed without the
    /// per-word dirty gate.
    pub words_offered: u64,
}

impl SlabActivity {
    /// Fraction of offered node-words the activity gate skipped
    /// (`0.0` when nothing was scheduled).
    pub fn skip_rate(&self) -> f64 {
        if self.words_offered == 0 {
            0.0
        } else {
            1.0 - self.words_evaluated as f64 / self.words_offered as f64
        }
    }
}

/// Evaluates one truth table across a whole slab: OR over the true rows
/// of the AND of each fanin slab (complemented where the row has a 0).
///
/// The `W`-word inner loops are straight-line with a const trip count,
/// so the compiler unrolls and autovectorizes them — this is the dense
/// (all-words-dirty) fast path.
fn eval_slab<const W: usize>(table: &TruthTable, fanins: &[[u64; W]], mask: &[u64; W]) -> [u64; W] {
    let mut out = [0u64; W];
    for row in 0..(1u32 << fanins.len()) {
        if !table.eval(row) {
            continue;
        }
        let mut m = *mask;
        for (k, fw) in fanins.iter().enumerate() {
            if (row >> k) & 1 == 1 {
                for w in 0..W {
                    m[w] &= fw[w];
                }
            } else {
                for w in 0..W {
                    m[w] &= !fw[w];
                }
            }
        }
        for w in 0..W {
            out[w] |= m[w];
        }
    }
    out
}

/// Unit-delay, cycle-based simulator over up to `W × 64` parallel lanes
/// packed as `W`-word slabs, with an activity-gated sparse sweep.
///
/// Each [`SlabSim::step`] models one clock cycle in every lane
/// simultaneously, exactly like [`crate::WordSim`] — the event wheel,
/// two-phase time slots, and per-lane functional/glitch split are the
/// same algorithm — but values are `[u64; W]` slabs and evaluation only
/// touches the slab words whose fanins changed.
#[derive(Debug)]
pub struct SlabSim<'a, const W: usize> {
    nl: &'a Netlist,
    fanouts: Vec<Vec<NodeId>>,
    lanes: usize,
    mask: [u64; W],
    /// Dirty bits covering every word with at least one active lane.
    full_dirty: u8,
    /// Node-major value slabs: `values[id * W + w]`.
    values: Vec<u64>,
    cycle_start: Vec<u64>,
    stats: SimStats,
    steps_done: u64,
    // time wheel state (mirrors `WordSim`)
    wheel: Vec<Vec<NodeId>>,
    scheduled_at: Vec<u32>,
    touched: Vec<NodeId>,
    touch_stamp: Vec<u64>,
    /// Per-node accumulated dirty-word bitmask (bit `w` = some fanin's
    /// word `w` changed since this node was last evaluated).
    dirty: Vec<u8>,
    // scratch for the per-node fanin slabs / single words
    fanin_slabs: Vec<[u64; W]>,
    fanin_words: Vec<u64>,
    words_evaluated: u64,
    words_offered: u64,
}

impl<'a, const W: usize> SlabSim<'a, W> {
    /// Creates a simulator with latches at init values, inputs low, and
    /// combinational logic settled in every lane (no transitions counted
    /// for this initialization).
    ///
    /// # Panics
    ///
    /// Panics if `W` is 0 or exceeds [`MAX_SLAB_WORDS`], if `lanes` is 0
    /// or exceeds `W * 64`, or if the netlist fails [`Netlist::check`].
    pub fn new(nl: &'a Netlist, lanes: usize) -> Self {
        assert!(
            (1..=MAX_SLAB_WORDS).contains(&W),
            "slab width must be in 1..={MAX_SLAB_WORDS} words, got {W}"
        );
        assert!(
            (1..=W * 64).contains(&lanes),
            "lanes must be in 1..={} for a {W}-word slab, got {lanes}",
            W * 64
        );
        let mut mask = [0u64; W];
        let mut full_dirty = 0u8;
        for (w, m) in mask.iter_mut().enumerate() {
            let lo = w * 64;
            *m = if lanes >= lo + 64 {
                u64::MAX
            } else if lanes > lo {
                (1u64 << (lanes - lo)) - 1
            } else {
                0
            };
            if *m != 0 {
                full_dirty |= 1 << w;
            }
        }
        // The zero-delay oracle validates the netlist and provides the
        // settled initial state, broadcast into every active lane.
        let ev = Evaluator::new(nl);
        let mut values = vec![0u64; nl.num_nodes() * W];
        for (id, &v) in ev.values().iter().enumerate() {
            if v {
                values[id * W..id * W + W].copy_from_slice(&mask);
            }
        }
        let depth = nl.depth() as usize;
        SlabSim {
            nl,
            fanouts: nl.fanouts(),
            lanes,
            mask,
            full_dirty,
            cycle_start: values.clone(),
            values,
            stats: SimStats {
                per_node: vec![0; nl.num_nodes()],
                ..SimStats::default()
            },
            steps_done: 0,
            wheel: vec![Vec::new(); depth + 2],
            scheduled_at: vec![u32::MAX; nl.num_nodes()],
            touched: Vec::new(),
            touch_stamp: vec![0; nl.num_nodes()],
            dirty: vec![0; nl.num_nodes()],
            fanin_slabs: Vec::new(),
            fanin_words: Vec::new(),
            words_evaluated: 0,
            words_offered: 0,
        }
    }

    /// Number of active lanes.
    pub fn lanes(&self) -> usize {
        self.lanes
    }

    /// Cumulative statistics. [`SimStats::cycles`] counts lane-cycles
    /// (`steps × lanes`); transition counters aggregate over all lanes.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Cumulative activity-gate counters (see [`SlabActivity`]).
    pub fn activity(&self) -> SlabActivity {
        SlabActivity {
            words_evaluated: self.words_evaluated,
            words_offered: self.words_offered,
        }
    }

    /// Current settled value of a node in one global lane (word
    /// `lane / 64`, bit `lane % 64`).
    ///
    /// # Panics
    ///
    /// Panics if `lane >= lanes`.
    pub fn value(&self, id: NodeId, lane: usize) -> bool {
        assert!(lane < self.lanes, "lane {lane} out of range");
        (self.values[id.index() * W + lane / 64] >> (lane % 64)) & 1 == 1
    }

    /// One word of a node's value slab (bit `L` = global lane
    /// `word * 64 + L`).
    ///
    /// # Panics
    ///
    /// Panics if `word >= W`.
    pub fn lane_word(&self, id: NodeId, word: usize) -> u64 {
        assert!(word < W, "slab word {word} out of range");
        self.values[id.index() * W + word]
    }

    /// Reads a little-endian word of node values from one lane.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is wider than 64 or `lane >= lanes`.
    pub fn word(&self, bits: &[NodeId], lane: usize) -> u64 {
        assert!(
            bits.len() <= 64,
            "word read limited to 64 bits, bus has {}",
            bits.len()
        );
        assert!(lane < self.lanes, "lane {lane} out of range");
        let (w, bit) = (lane / 64, lane % 64);
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| {
            acc | (((self.values[b.index() * W + w] >> bit) & 1) << i)
        })
    }

    /// Runs one clock cycle in every lane. `pi_slabs` holds `W` words
    /// per primary input (in [`Netlist::inputs`] order, input-major:
    /// `pi_slabs[input * W + w]`), one bit per lane; bits above the lane
    /// count are ignored.
    ///
    /// # Panics
    ///
    /// Panics if `pi_slabs.len()` differs from `inputs × W`.
    pub fn step(&mut self, pi_slabs: &[u64]) -> CycleReport {
        let inputs = self.nl.inputs();
        assert_eq!(
            pi_slabs.len(),
            inputs.len() * W,
            "{W} slab word(s) per primary input"
        );
        self.cycle_start.copy_from_slice(&self.values);
        self.touched.clear();
        self.steps_done += 1;

        let mut report = CycleReport::default();
        // Time 0: latch capture + new PI slabs, simultaneously.
        let captured: Vec<(NodeId, [u64; W])> = self
            .nl
            .latches()
            .iter()
            .map(|&l| match &self.nl.node(l).kind {
                NodeKind::Latch { data, .. } => (l, self.slab(*data)),
                _ => unreachable!(),
            })
            .collect();
        for (l, slab) in captured {
            self.apply_change(l, slab, &mut report);
        }
        let pi_changes: Vec<(NodeId, [u64; W])> = inputs
            .iter()
            .enumerate()
            .map(|(i, &id)| {
                let mut slab = [0u64; W];
                slab.copy_from_slice(&pi_slabs[i * W..i * W + W]);
                (id, slab)
            })
            .collect();
        for (i, slab) in pi_changes {
            self.apply_change(i, slab, &mut report);
        }

        // Propagate with unit delay; two-phase per time slot so every node
        // scheduled at time t sees its fanins as of time t-1 (in every
        // lane), exactly like the single-word engine.
        let mut t = 1usize;
        while t < self.wheel.len() {
            if self.wheel[t].is_empty() {
                t += 1;
                continue;
            }
            let batch = std::mem::take(&mut self.wheel[t]);
            let mut updates: Vec<(NodeId, [u64; W], u8)> = Vec::with_capacity(batch.len());
            for id in batch {
                if self.scheduled_at[id.index()] == t as u32 {
                    self.scheduled_at[id.index()] = u32::MAX;
                }
                let d = std::mem::take(&mut self.dirty[id.index()]);
                if d == 0 {
                    continue;
                }
                if let NodeKind::Logic { fanins, table } = &self.nl.node(id).kind {
                    self.words_offered += W as u64;
                    let base = id.index() * W;
                    if d == self.full_dirty {
                        // Dense path: every active word has dirty fanins —
                        // evaluate the whole slab with the vectorized
                        // kernel.
                        self.words_evaluated += W as u64;
                        self.fanin_slabs.clear();
                        for f in fanins {
                            let fb = f.index() * W;
                            let mut slab = [0u64; W];
                            slab.copy_from_slice(&self.values[fb..fb + W]);
                            self.fanin_slabs.push(slab);
                        }
                        let new = eval_slab(table, &self.fanin_slabs, &self.mask);
                        let mut changed = 0u8;
                        for (w, &nw) in new.iter().enumerate() {
                            if nw != self.values[base + w] {
                                changed |= 1 << w;
                            }
                        }
                        if changed != 0 {
                            updates.push((id, new, changed));
                        }
                    } else {
                        // Sparse path: recompute only the dirty words. A
                        // word in which no fanin changed re-evaluates to
                        // its current value, so skipping it is exact.
                        self.words_evaluated += u64::from(d.count_ones());
                        let mut new = self.slab(id);
                        let mut changed = 0u8;
                        let mut rest = d;
                        while rest != 0 {
                            let w = rest.trailing_zeros() as usize;
                            rest &= rest - 1;
                            self.fanin_words.clear();
                            self.fanin_words
                                .extend(fanins.iter().map(|f| self.values[f.index() * W + w]));
                            let nw = eval_word(table, &self.fanin_words, self.mask[w]);
                            if nw != new[w] {
                                new[w] = nw;
                                changed |= 1 << w;
                            }
                        }
                        if changed != 0 {
                            updates.push((id, new, changed));
                        }
                    }
                }
            }
            for (id, new, changed) in updates {
                self.apply_update(id, new, changed, t + 1, &mut report);
            }
            t += 1;
        }

        // Functional/glitch split, per lane: a lane whose settled value
        // differs from its value at cycle start contributes one functional
        // transition.
        for &id in &self.touched {
            let base = id.index() * W;
            for w in 0..W {
                let diff = (self.values[base + w] ^ self.cycle_start[base + w]) & self.mask[w];
                report.functional += u64::from(diff.count_ones());
            }
        }
        report.glitches = report.transitions - report.functional;
        self.stats.cycles += self.lanes as u64;
        self.stats.total_transitions += report.transitions;
        self.stats.functional_transitions += report.functional;
        self.stats.glitch_transitions += report.glitches;
        report
    }

    fn slab(&self, id: NodeId) -> [u64; W] {
        let base = id.index() * W;
        let mut slab = [0u64; W];
        slab.copy_from_slice(&self.values[base..base + W]);
        slab
    }

    fn apply_change(&mut self, id: NodeId, slab: [u64; W], report: &mut CycleReport) {
        let base = id.index() * W;
        let mut changed = 0u8;
        for (w, &sw) in slab.iter().enumerate() {
            if (sw & self.mask[w]) != self.values[base + w] {
                changed |= 1 << w;
            }
        }
        if changed != 0 {
            self.apply_update(id, slab, changed, 1, report);
        }
    }

    fn apply_update(
        &mut self,
        id: NodeId,
        slab: [u64; W],
        changed: u8,
        time: usize,
        report: &mut CycleReport,
    ) {
        let base = id.index() * W;
        let mut flips = 0u64;
        for (w, &sw) in slab.iter().enumerate() {
            let new = sw & self.mask[w];
            flips += u64::from((self.values[base + w] ^ new).count_ones());
            self.values[base + w] = new;
        }
        report.transitions += flips;
        self.stats.per_node[id.index()] += flips;
        if self.touch_stamp[id.index()] != self.steps_done {
            self.touch_stamp[id.index()] = self.steps_done;
            self.touched.push(id);
        }
        self.schedule_fanouts(id, changed, time);
    }

    fn schedule_fanouts(&mut self, id: NodeId, changed: u8, time: usize) {
        let time = time.min(self.wheel.len() - 1);
        for k in 0..self.fanouts[id.index()].len() {
            let fo = self.fanouts[id.index()][k];
            if matches!(self.nl.node(fo).kind, NodeKind::Logic { .. }) {
                // The dirty mask accumulates even when the node is already
                // scheduled for this slot — two fanins changing different
                // words must both be visible at evaluation time.
                self.dirty[fo.index()] |= changed;
                if self.scheduled_at[fo.index()] != time as u32 {
                    self.scheduled_at[fo.index()] = time as u32;
                    self.wheel[time].push(fo);
                }
            }
        }
    }
}

fn run_slab<const W: usize>(
    nl: &Netlist,
    steps: u64,
    seed: u64,
    lanes: usize,
) -> (SimStats, SlabActivity) {
    let mut sim = SlabSim::<W>::new(nl, lanes);
    let mut src = SlabVectorSource::new(seed, lanes);
    let mut words = vec![0u64; nl.inputs().len() * W];
    for _ in 0..steps {
        src.fill_slab(&mut words);
        sim.step(&words);
    }
    (sim.stats().clone(), sim.activity())
}

/// Simulates `steps` clock cycles in `lanes` parallel lanes (up to
/// [`MAX_SLAB_LANES`]) with uniform random primary-input vectors — global
/// lane `L` draws its stream from [`crate::lane_seed`]`(seed, L)`, so
/// lane 0 reproduces [`crate::run_random`]`(nl, steps, seed)` exactly and
/// any run is the lane-decomposition of its 64-lane sub-runs — and
/// returns the cumulative statistics plus the activity-gate counters.
///
/// The slab width is chosen at runtime: `lanes.div_ceil(64)` words per
/// node, each width a separately monomorphized, autovectorized kernel.
///
/// # Panics
///
/// Panics if `lanes` is 0 or exceeds [`MAX_SLAB_LANES`].
pub fn run_random_slab_with_activity(
    nl: &Netlist,
    steps: u64,
    seed: u64,
    lanes: usize,
) -> (SimStats, SlabActivity) {
    assert!(
        (1..=MAX_SLAB_LANES).contains(&lanes),
        "lanes must be in 1..={MAX_SLAB_LANES}, got {lanes}"
    );
    match lanes.div_ceil(64) {
        1 => run_slab::<1>(nl, steps, seed, lanes),
        2 => run_slab::<2>(nl, steps, seed, lanes),
        3 => run_slab::<3>(nl, steps, seed, lanes),
        4 => run_slab::<4>(nl, steps, seed, lanes),
        5 => run_slab::<5>(nl, steps, seed, lanes),
        6 => run_slab::<6>(nl, steps, seed, lanes),
        7 => run_slab::<7>(nl, steps, seed, lanes),
        8 => run_slab::<8>(nl, steps, seed, lanes),
        _ => unreachable!("lane bound checked above"),
    }
}

/// [`run_random_slab_with_activity`] without the activity counters — the
/// drop-in slab counterpart of [`crate::run_random_word`].
///
/// # Examples
///
/// ```
/// use netlist::{Netlist, TruthTable};
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
/// nl.mark_output("o", g);
/// let slab = gatesim::run_random_slab(&nl, 100, 42, 64);
/// let word = gatesim::run_random_word(&nl, 100, 42, 64);
/// assert_eq!(slab.total_transitions, word.total_transitions);
/// ```
pub fn run_random_slab(nl: &Netlist, steps: u64, seed: u64, lanes: usize) -> SimStats {
    run_random_slab_with_activity(nl, steps, seed, lanes).0
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::vectors::WordVectorSource;
    use crate::wordsim::{run_random_word, WordSim};
    use netlist::{cells, TruthTable};
    use rand::rngs::StdRng;
    use rand::{Rng, SeedableRng};

    /// A random soup of 2..4-input LUTs over a few inputs and latches —
    /// arbitrary truth tables, arbitrary wiring depth.
    fn lut_soup(seed: u64, inputs: usize, luts: usize) -> Netlist {
        let mut rng = StdRng::seed_from_u64(seed);
        let mut nl = Netlist::new("soup");
        let mut pool: Vec<NodeId> = (0..inputs).map(|i| nl.add_input(format!("i{i}"))).collect();
        for k in 0..luts {
            let arity = 2 + (rng.gen::<u64>() % 3) as usize;
            let fanins: Vec<NodeId> = (0..arity)
                .map(|_| pool[(rng.gen::<u64>() as usize) % pool.len()])
                .collect();
            let mut bits = vec![false; 1 << arity];
            for b in &mut bits {
                *b = rng.gen_bool(0.5);
            }
            let table = TruthTable::from_fn(arity, |r| bits[r as usize]);
            let g = nl.add_logic(format!("g{k}"), fanins, table);
            pool.push(g);
        }
        let out = *pool.last().unwrap();
        nl.mark_output("o", out);
        nl
    }

    #[test]
    fn eval_slab_matches_eval_word_per_word() {
        let xor3 = TruthTable::xor(3);
        let mut rng = StdRng::seed_from_u64(9);
        let fanins: Vec<[u64; 4]> = (0..3)
            .map(|_| [rng.gen(), rng.gen(), rng.gen(), rng.gen()])
            .collect();
        let mask = [u64::MAX, u64::MAX, u64::MAX, 0xFFFF];
        let out = eval_slab(&xor3, &fanins, &mask);
        for w in 0..4 {
            let words: Vec<u64> = fanins.iter().map(|f| f[w]).collect();
            assert_eq!(out[w], eval_word(&xor3, &words, mask[w]), "word {w}");
        }
    }

    #[test]
    fn single_word_slab_matches_wordsim() {
        // W = 1 must be the existing engine, stat for stat.
        let nl = lut_soup(3, 6, 40);
        for lanes in [1, 17, 64] {
            let slab = run_random_slab(&nl, 60, 5, lanes);
            let word = run_random_word(&nl, 60, 5, lanes);
            assert_eq!(slab.cycles, word.cycles, "{lanes} lanes");
            assert_eq!(slab.total_transitions, word.total_transitions);
            assert_eq!(slab.functional_transitions, word.functional_transitions);
            assert_eq!(slab.glitch_transitions, word.glitch_transitions);
            assert_eq!(slab.per_node, word.per_node);
        }
    }

    #[test]
    fn slab_lane_zero_matches_scalar_sim() {
        // Lane 0 of slab word 0 replays the scalar stream byte for byte,
        // even at 256 lanes.
        let nl = lut_soup(11, 5, 30);
        let scalar = crate::run_random(&nl, 50, 7);
        let mut sim = SlabSim::<4>::new(&nl, 256);
        let mut src = SlabVectorSource::new(7, 256);
        let mut words = vec![0u64; nl.inputs().len() * 4];
        let mut scalar_sim = crate::CycleSim::new(&nl);
        let mut scalar_src = crate::VectorSource::new(7);
        let mut vector = vec![false; nl.inputs().len()];
        for _ in 0..50 {
            src.fill_slab(&mut words);
            sim.step(&words);
            scalar_src.fill(&mut vector);
            scalar_sim.step(&vector);
            for (id, _) in nl.nodes() {
                assert_eq!(sim.value(id, 0), scalar_sim.value(id), "{id}");
            }
        }
        // Aggregate stats cover 256 lanes; the scalar totals are a lower
        // bound contributed by lane 0 alone.
        assert!(sim.stats().total_transitions >= scalar.total_transitions);
    }

    #[test]
    fn slab_decomposes_into_word_subruns_on_lut_soup() {
        // 256 lanes = the sum of four 64-lane WordSim runs whose lanes
        // are seeded with offsets 0, 64, 128, 192.
        let nl = lut_soup(21, 7, 60);
        let seed = 13;
        let steps = 40;
        let (slab, activity) = run_random_slab_with_activity(&nl, steps, seed, 256);
        let mut total = 0u64;
        let mut functional = 0u64;
        let mut per_node = vec![0u64; nl.num_nodes()];
        for j in 0..4 {
            let mut sim = WordSim::new(&nl, 64);
            let mut src = WordVectorSource::with_lane_offset(seed, 64, 64 * j);
            let mut words = vec![0u64; nl.inputs().len()];
            for _ in 0..steps {
                src.fill_words(&mut words);
                sim.step(&words);
            }
            let s = sim.stats();
            total += s.total_transitions;
            functional += s.functional_transitions;
            for (acc, x) in per_node.iter_mut().zip(&s.per_node) {
                *acc += x;
            }
        }
        assert_eq!(slab.total_transitions, total);
        assert_eq!(slab.functional_transitions, functional);
        assert_eq!(slab.per_node, per_node);
        assert_eq!(slab.cycles, steps * 256);
        assert!(activity.words_offered > 0);
        assert!(activity.words_evaluated <= activity.words_offered);
    }

    #[test]
    fn slab_decomposes_on_ripple_adder_with_latches() {
        let mut nl = Netlist::new("add");
        let a: Vec<_> = (0..4).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..4).map(|i| nl.add_input(format!("b{i}"))).collect();
        let (s, _) = cells::ripple_adder(&mut nl, "add", &a, &b, None);
        // Register the sum so latch capture crosses slab words too.
        for (i, x) in s.iter().enumerate() {
            let q = nl.add_latch(format!("q{i}"), false);
            nl.set_latch_data(q, *x);
            nl.mark_output(format!("s{i}"), q);
        }
        let seed = 99;
        let steps = 50;
        let lanes = 130; // partial last word: 3-word slab, 2 live lanes on top
        let slab = run_random_slab(&nl, steps, seed, lanes);
        let mut total = 0u64;
        let mut per_node = vec![0u64; nl.num_nodes()];
        for (j, sub) in [64usize, 64, 2].iter().enumerate() {
            let mut sim = WordSim::new(&nl, *sub);
            let mut src = WordVectorSource::with_lane_offset(seed, *sub, 64 * j);
            let mut words = vec![0u64; nl.inputs().len()];
            for _ in 0..steps {
                src.fill_words(&mut words);
                sim.step(&words);
            }
            total += sim.stats().total_transitions;
            for (acc, x) in per_node.iter_mut().zip(&sim.stats().per_node) {
                *acc += x;
            }
        }
        assert_eq!(slab.total_transitions, total);
        assert_eq!(slab.per_node, per_node);
        assert_eq!(slab.cycles, steps * lanes as u64);
    }

    #[test]
    fn activity_gate_skips_quiescent_words() {
        // Hold every lane above 64 constant: words 1..W never change
        // after settling, so the gate must skip (nearly) all their
        // evaluations while lanes 0..64 keep toggling.
        let mut nl = Netlist::new("g");
        let a: Vec<_> = (0..4).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<_> = (0..4).map(|i| nl.add_input(format!("b{i}"))).collect();
        let (s, _) = cells::ripple_adder(&mut nl, "add", &a, &b, None);
        for (i, x) in s.iter().enumerate() {
            nl.mark_output(format!("s{i}"), *x);
        }
        let lanes = 256;
        let mut sim = SlabSim::<4>::new(&nl, lanes);
        let mut src = WordVectorSource::new(3, 64);
        let mut low = vec![0u64; nl.inputs().len()];
        let mut words = vec![0u64; nl.inputs().len() * 4];
        for _ in 0..40 {
            src.fill_words(&mut low);
            for (i, &w) in low.iter().enumerate() {
                words[i * 4] = w; // words 1..4 stay all-zero
            }
            sim.step(&words);
        }
        let act = sim.activity();
        assert!(act.words_offered > 0);
        // Only word 0 is ever dirty, so at most 1/4 of the offered words
        // can have been evaluated.
        assert!(
            act.words_evaluated * 4 <= act.words_offered,
            "gate failed to skip quiescent words: {act:?}"
        );
        assert!(act.skip_rate() >= 0.74, "skip rate {}", act.skip_rate());
        // And the live word still agrees with a plain 64-lane run.
        let reference = {
            let mut sim = WordSim::new(&nl, 64);
            let mut src = WordVectorSource::new(3, 64);
            let mut words = vec![0u64; nl.inputs().len()];
            for _ in 0..40 {
                src.fill_words(&mut words);
                sim.step(&words);
            }
            sim.stats().clone()
        };
        assert_eq!(sim.stats().total_transitions, reference.total_transitions);
        assert_eq!(sim.stats().per_node, reference.per_node);
    }

    #[test]
    fn fixed_seed_slab_runs_are_repeatable() {
        let nl = lut_soup(8, 6, 50);
        let s1 = run_random_slab(&nl, 30, 11, 512);
        let s2 = run_random_slab(&nl, 30, 11, 512);
        assert_eq!(s1.total_transitions, s2.total_transitions);
        assert_eq!(s1.glitch_transitions, s2.glitch_transitions);
        assert_eq!(s1.per_node, s2.per_node);
    }

    #[test]
    #[should_panic(expected = "lanes must be in 1..=512")]
    fn zero_lanes_rejected() {
        let nl = lut_soup(1, 3, 5);
        run_random_slab(&nl, 1, 0, 0);
    }

    #[test]
    #[should_panic(expected = "lanes must be in 1..=512")]
    fn too_many_lanes_rejected() {
        let nl = lut_soup(1, 3, 5);
        run_random_slab(&nl, 1, 0, 513);
    }
}
