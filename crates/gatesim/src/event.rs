//! Event-driven unit-delay simulation with toggle accounting.
//!
//! This is the reproduction's substitute for the Quartus II simulator +
//! PowerPlay toggle measurement: every logic node (LUT) has one unit of
//! delay, so a primary-input or register change at the clock edge (time 0)
//! ripples through the network producing transitions at discrete times —
//! including *glitches*, the spurious intermediate transitions caused by
//! unbalanced path depths that the paper's binding algorithm minimizes.
//!
//! Per cycle, per node, the simulator counts every output transition.
//! A node whose settled value differs from its value at the start of the
//! cycle contributes one *functional* transition; all remaining
//! transitions are glitches.

use crate::eval::Evaluator;
use netlist::binio::{self, BinError};
use netlist::{Netlist, NodeId, NodeKind};

/// Version of the binary sim-summary encoding (the `"simu"` payload).
pub const SIM_SUMMARY_VERSION: u32 = 1;

/// Cumulative simulation statistics.
#[derive(Clone, Debug, Default)]
pub struct SimStats {
    /// Number of simulated clock cycles.
    pub cycles: u64,
    /// Total output transitions over all nodes (inputs and latch outputs
    /// included).
    pub total_transitions: u64,
    /// Transitions that changed a node's settled value across the cycle.
    pub functional_transitions: u64,
    /// `total - functional`: spurious transitions.
    pub glitch_transitions: u64,
    /// Per-node transition counters (indexed by node id).
    pub per_node: Vec<u64>,
}

impl SimStats {
    /// Glitch share of all transitions.
    pub fn glitch_fraction(&self) -> f64 {
        if self.total_transitions == 0 {
            0.0
        } else {
            self.glitch_transitions as f64 / self.total_transitions as f64
        }
    }

    /// Mean transitions per node per cycle (the simulated analogue of the
    /// paper's normalized switching activity).
    pub fn mean_activity(&self) -> f64 {
        if self.cycles == 0 || self.per_node.is_empty() {
            0.0
        } else {
            self.total_transitions as f64 / self.cycles as f64 / self.per_node.len() as f64
        }
    }

    /// Serializes the summary (cycles, transition totals, node count) to
    /// one line of text — the persistence format the experiment artifact
    /// store caches simulation results in. Per-node counters are *not*
    /// part of the summary; [`SimStats::from_summary_text`] restores them
    /// as zeros of the right length, so every aggregate accessor
    /// (totals, [`SimStats::glitch_fraction`], [`SimStats::mean_activity`])
    /// survives the round trip exactly.
    pub fn to_summary_text(&self) -> String {
        format!(
            "# hlpower sim v1\ncycles {} total {} functional {} glitch {} nodes {}\n",
            self.cycles,
            self.total_transitions,
            self.functional_transitions,
            self.glitch_transitions,
            self.per_node.len()
        )
    }

    /// Parses a summary written by [`SimStats::to_summary_text`].
    ///
    /// # Errors
    ///
    /// Returns a description of the problem on malformed input or a
    /// version-header mismatch.
    pub fn from_summary_text(text: &str) -> Result<SimStats, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some("# hlpower sim v1") => {}
            other => return Err(format!("bad sim summary header {other:?}")),
        }
        let line = lines.next().ok_or("missing sim summary line")?;
        let toks: Vec<&str> = line.split_whitespace().collect();
        let field = |key: &str, pos: usize| -> Result<u64, String> {
            if toks.get(pos) != Some(&key) {
                return Err(format!("expected `{key}` at token {pos} of `{line}`"));
            }
            toks.get(pos + 1)
                .and_then(|t| t.parse().ok())
                .ok_or_else(|| format!("bad `{key}` value in `{line}`"))
        };
        let cycles = field("cycles", 0)?;
        let total_transitions = field("total", 2)?;
        let functional_transitions = field("functional", 4)?;
        let glitch_transitions = field("glitch", 6)?;
        let nodes = field("nodes", 8)? as usize;
        // checked_add: corrupt counts near u64::MAX must report an error,
        // not overflow-panic in debug builds (loads treat Err as a miss).
        if functional_transitions.checked_add(glitch_transitions) != Some(total_transitions) {
            return Err(format!("inconsistent transition split in `{line}`"));
        }
        Ok(SimStats {
            cycles,
            total_transitions,
            functional_transitions,
            glitch_transitions,
            per_node: vec![0; nodes],
        })
    }

    /// Serializes the summary as an `hlpbin v1` `"simu"` container — the
    /// store's hot-path format. Carries exactly the fields of
    /// [`SimStats::to_summary_text`] (per-node counters are dropped the
    /// same way), as one section of five little-endian `u64`s.
    pub fn to_summary_bin(&self) -> Vec<u8> {
        let mut w = binio::BinWriter::new(binio::KIND_SIM, SIM_SUMMARY_VERSION);
        let mut body = Vec::with_capacity(40);
        body.extend_from_slice(&self.cycles.to_le_bytes());
        body.extend_from_slice(&self.total_transitions.to_le_bytes());
        body.extend_from_slice(&self.functional_transitions.to_le_bytes());
        body.extend_from_slice(&self.glitch_transitions.to_le_bytes());
        body.extend_from_slice(&(self.per_node.len() as u64).to_le_bytes());
        w.section(&body);
        w.finish()
    }

    /// Parses a summary written by [`SimStats::to_summary_bin`],
    /// enforcing the same transition-split consistency check as the text
    /// parser.
    ///
    /// # Errors
    ///
    /// Any container or payload defect is a [`BinError`]; the artifact
    /// store treats them all as cache misses.
    pub fn from_summary_bin(data: &[u8]) -> Result<SimStats, BinError> {
        let r = binio::BinReader::open(data, binio::KIND_SIM, SIM_SUMMARY_VERSION)?;
        let mut c = binio::Cursor::new(r.section(0)?);
        let cycles = c.u64()?;
        let total_transitions = c.u64()?;
        let functional_transitions = c.u64()?;
        let glitch_transitions = c.u64()?;
        let nodes = c.read_len()?;
        if !c.done() {
            return Err(BinError::Malformed(
                "trailing bytes after sim summary".to_string(),
            ));
        }
        if functional_transitions.checked_add(glitch_transitions) != Some(total_transitions) {
            return Err(BinError::Malformed(
                "inconsistent transition split".to_string(),
            ));
        }
        Ok(SimStats {
            cycles,
            total_transitions,
            functional_transitions,
            glitch_transitions,
            per_node: vec![0; nodes],
        })
    }
}

/// Per-cycle transition summary returned by [`CycleSim::step`].
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct CycleReport {
    /// Transitions in this cycle.
    pub transitions: u64,
    /// Functional transitions in this cycle.
    pub functional: u64,
    /// Glitch transitions in this cycle.
    pub glitches: u64,
}

/// Unit-delay, cycle-based event simulator.
///
/// Each [`CycleSim::step`] models one clock cycle: latches capture their
/// `D` values and primary inputs take their new values simultaneously at
/// time 0; changes then propagate with one unit of delay per logic level
/// while transitions are counted.
#[derive(Debug)]
pub struct CycleSim<'a> {
    nl: &'a Netlist,
    fanouts: Vec<Vec<NodeId>>,
    values: Vec<bool>,
    cycle_start: Vec<bool>,
    stats: SimStats,
    // time wheel state
    wheel: Vec<Vec<NodeId>>,
    scheduled_at: Vec<u32>,
    touched: Vec<NodeId>,
    touch_stamp: Vec<u64>,
}

impl<'a> CycleSim<'a> {
    /// Creates a simulator with latches at init values, inputs low, and
    /// combinational logic settled (no transitions counted for this
    /// initialization).
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::check`].
    pub fn new(nl: &'a Netlist) -> Self {
        let ev = Evaluator::new(nl); // validates + settles initial state
        let values = ev.values().to_vec();
        let depth = nl.depth() as usize;
        CycleSim {
            nl,
            fanouts: nl.fanouts(),
            cycle_start: values.clone(),
            values,
            stats: SimStats {
                per_node: vec![0; nl.num_nodes()],
                ..SimStats::default()
            },
            wheel: vec![Vec::new(); depth + 2],
            scheduled_at: vec![u32::MAX; nl.num_nodes()],
            touched: Vec::new(),
            touch_stamp: vec![0; nl.num_nodes()],
        }
    }

    /// Cumulative statistics.
    pub fn stats(&self) -> &SimStats {
        &self.stats
    }

    /// Current settled value of a node.
    pub fn value(&self, id: NodeId) -> bool {
        self.values[id.index()]
    }

    /// Reads a little-endian word of node values.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is wider than 64 — a `<< i` past bit 63 would
    /// panic in debug builds but silently wrap in release, folding bit
    /// `i` onto bit `i - 64`.
    pub fn word(&self, bits: &[NodeId]) -> u64 {
        assert!(
            bits.len() <= 64,
            "word read limited to 64 bits, bus has {}",
            bits.len()
        );
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| {
            acc | ((self.values[b.index()] as u64) << i)
        })
    }

    /// Runs one clock cycle with the given primary-input vector (one bool
    /// per input, in [`Netlist::inputs`] order).
    ///
    /// # Panics
    ///
    /// Panics if `pi_vector.len()` differs from the input count.
    pub fn step(&mut self, pi_vector: &[bool]) -> CycleReport {
        let inputs = self.nl.inputs();
        assert_eq!(pi_vector.len(), inputs.len(), "one value per primary input");
        self.cycle_start.copy_from_slice(&self.values);
        self.touched.clear();

        let mut report = CycleReport::default();
        // Time 0: latch capture + new PI vector, simultaneously.
        let captured: Vec<(NodeId, bool)> = self
            .nl
            .latches()
            .iter()
            .map(|&l| match &self.nl.node(l).kind {
                NodeKind::Latch { data, .. } => (l, self.values[data.index()]),
                _ => unreachable!(),
            })
            .collect();
        for (l, v) in captured {
            self.apply_change(l, v, &mut report);
        }
        let pi_changes: Vec<(NodeId, bool)> = inputs
            .iter()
            .zip(pi_vector)
            .map(|(&i, &v)| (i, v))
            .collect();
        for (i, v) in pi_changes {
            self.apply_change(i, v, &mut report);
        }

        // Propagate with unit delay.
        let mut t = 1usize;
        while t < self.wheel.len() {
            if self.wheel[t].is_empty() {
                t += 1;
                continue;
            }
            let batch = std::mem::take(&mut self.wheel[t]);
            // Two-phase update: every node scheduled at time t must see its
            // fanins as of time t-1, so evaluate the whole batch before
            // committing any change.
            let mut updates: Vec<(NodeId, bool)> = Vec::with_capacity(batch.len());
            for id in batch {
                // Clear the push-dedup mark so later re-schedules (and
                // later cycles) can enqueue this node again.
                if self.scheduled_at[id.index()] == t as u32 {
                    self.scheduled_at[id.index()] = u32::MAX;
                }
                if let NodeKind::Logic { fanins, table } = &self.nl.node(id).kind {
                    let mut row = 0u32;
                    for (k, f) in fanins.iter().enumerate() {
                        if self.values[f.index()] {
                            row |= 1 << k;
                        }
                    }
                    let new = table.eval(row);
                    if new != self.values[id.index()] {
                        updates.push((id, new));
                    }
                }
            }
            for (id, new) in updates {
                self.values[id.index()] = new;
                self.count_transition(id, &mut report);
                self.schedule_fanouts(id, t + 1);
            }
            t += 1;
        }

        // Functional/glitch split.
        for &id in &self.touched {
            if self.values[id.index()] != self.cycle_start[id.index()] {
                report.functional += 1;
            }
        }
        report.glitches = report.transitions - report.functional;
        self.stats.cycles += 1;
        self.stats.total_transitions += report.transitions;
        self.stats.functional_transitions += report.functional;
        self.stats.glitch_transitions += report.glitches;
        report
    }

    fn apply_change(&mut self, id: NodeId, value: bool, report: &mut CycleReport) {
        if self.values[id.index()] != value {
            self.values[id.index()] = value;
            self.count_transition(id, report);
            self.schedule_fanouts(id, 1);
        }
    }

    fn count_transition(&mut self, id: NodeId, report: &mut CycleReport) {
        report.transitions += 1;
        let stamp = self.stats.cycles + 1;
        if self.touch_stamp[id.index()] != stamp {
            self.touch_stamp[id.index()] = stamp;
            self.touched.push(id);
        }
        self.stats.per_node[id.index()] += 1;
    }

    fn schedule_fanouts(&mut self, id: NodeId, time: usize) {
        let time = time.min(self.wheel.len() - 1);
        // Latch data edges appear in fanouts but latches only sample at
        // the clock edge, so only logic fanouts are scheduled. Index-based
        // iteration keeps the borrow checker happy without allocating.
        for k in 0..self.fanouts[id.index()].len() {
            let fo = self.fanouts[id.index()][k];
            if matches!(self.nl.node(fo).kind, NodeKind::Logic { .. })
                && self.scheduled_at[fo.index()] != time as u32
            {
                self.scheduled_at[fo.index()] = time as u32;
                self.wheel[time].push(fo);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{cells, Netlist, TruthTable};

    #[test]
    fn settled_values_match_zero_delay() {
        let mut nl = Netlist::new("eq");
        let a: Vec<NodeId> = (0..6).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..6).map(|i| nl.add_input(format!("b{i}"))).collect();
        let p = cells::array_multiplier(&mut nl, "m", &a, &b);
        for (i, s) in p.iter().enumerate() {
            nl.mark_output(format!("p{i}"), *s);
        }
        let mut sim = CycleSim::new(&nl);
        let mut ev = Evaluator::new(&nl);
        let cases = [(3u64, 5u64), (63, 63), (17, 2), (0, 9), (44, 21)];
        for (x, y) in cases {
            let mut vec_bits = Vec::new();
            for i in 0..6 {
                vec_bits.push((x >> i) & 1 == 1);
            }
            for i in 0..6 {
                vec_bits.push((y >> i) & 1 == 1);
            }
            sim.step(&vec_bits);
            ev.set_word(&a, x);
            ev.set_word(&b, y);
            ev.settle();
            assert_eq!(sim.word(&p), ev.word(&p), "{x}*{y}");
            assert_eq!(sim.word(&p), (x * y) & 63);
        }
    }

    #[test]
    fn single_gate_no_glitches() {
        let mut nl = Netlist::new("g");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_logic("g", vec![a, b], TruthTable::xor(2));
        nl.mark_output("o", g);
        let mut sim = CycleSim::new(&nl);
        sim.step(&[true, false]);
        sim.step(&[true, true]);
        sim.step(&[false, true]);
        let stats = sim.stats();
        assert_eq!(stats.glitch_transitions, 0, "one level cannot glitch");
        assert!(stats.functional_transitions > 0);
    }

    #[test]
    fn skewed_paths_glitch() {
        // f = AND(AND(a, b), c): when (a,b) go 0->1 while c falls 1->0 the
        // settled value stays 0, but c's late arrival means... actually
        // glitches arise when an early input briefly enables the output.
        // Drive a=b=1, c: 1 -> with (a,b) switching 0->1 the middle gate
        // rises at t=1, f rises at t=2; settled f=1: functional. To force a
        // glitch: start a=1,b=1 (g=1), c=0, f=0; switch c->1 and b->0 in
        // the same cycle: f sees c=1,g=1 at t=1 (rises: glitch), then g
        // falls at t=1 so f falls at t=2. Settled f=0: pure glitch.
        let mut nl = Netlist::new("gl");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
        let f = nl.add_logic("f", vec![g, c], TruthTable::and(2));
        nl.mark_output("o", f);
        let mut sim = CycleSim::new(&nl);
        sim.step(&[true, true, false]); // establish a=b=1, c=0, f=0
        let before = sim.stats().glitch_transitions;
        let report = sim.step(&[true, false, true]); // b falls, c rises
        assert!(!sim.value(f), "settled value is 0");
        assert!(
            sim.stats().glitch_transitions > before,
            "f pulsed high then low: {report:?}"
        );
        assert_eq!(report.glitches, 2, "f rose and fell: two glitch edges");
    }

    #[test]
    fn latches_capture_on_step() {
        // accumulator: acc' = acc + in (2 bits)
        let mut nl = Netlist::new("acc");
        let d: Vec<NodeId> = (0..2).map(|i| nl.add_input(format!("d{i}"))).collect();
        let reg = cells::register_word(&mut nl, "acc", 2, 0);
        let (sum, _) = cells::ripple_adder(&mut nl, "add", &reg.q, &d, None);
        cells::connect_register(&mut nl, &reg, &sum);
        nl.mark_output("acc0", reg.q[0]);
        nl.mark_output("acc1", reg.q[1]);
        let mut sim = CycleSim::new(&nl);
        // After first step the register still holds 0 (it captures the D
        // computed from the *previous* cycle's inputs, which were 0).
        sim.step(&[true, false]); // present 1
        assert_eq!(sim.word(&reg.q), 0);
        sim.step(&[true, false]); // capture 0+1, present 1
        assert_eq!(sim.word(&reg.q), 1);
        sim.step(&[false, true]); // capture 1+1, present 2
        assert_eq!(sim.word(&reg.q), 2);
        sim.step(&[false, false]); // capture 2+2 (present 0)
        assert_eq!(sim.word(&reg.q), 0, "wraps mod 4");
    }

    #[test]
    fn transition_counts_are_consistent() {
        let mut nl = Netlist::new("count");
        let a: Vec<NodeId> = (0..4).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..4).map(|i| nl.add_input(format!("b{i}"))).collect();
        let (s, _) = cells::ripple_adder(&mut nl, "add", &a, &b, None);
        for (i, x) in s.iter().enumerate() {
            nl.mark_output(format!("s{i}"), *x);
        }
        let mut sim = CycleSim::new(&nl);
        let mut rng_state = 12345u64;
        let mut next = || {
            rng_state = rng_state
                .wrapping_mul(6364136223846793005)
                .wrapping_add(1442695040888963407);
            rng_state >> 33
        };
        for _ in 0..50 {
            let v = next();
            let bits: Vec<bool> = (0..8).map(|i| (v >> i) & 1 == 1).collect();
            sim.step(&bits);
        }
        let stats = sim.stats();
        assert_eq!(
            stats.total_transitions,
            stats.functional_transitions + stats.glitch_transitions
        );
        assert_eq!(stats.per_node.iter().sum::<u64>(), stats.total_transitions);
        assert_eq!(stats.cycles, 50);
        assert!(stats.mean_activity() > 0.0);
    }

    #[test]
    #[should_panic(expected = "word read limited to 64 bits")]
    fn word_rejects_buses_wider_than_64() {
        // Regression: `<< i` over a 65+-bit bus used to panic in debug
        // builds and silently wrap (bit 64 folded onto bit 0) in release.
        let mut nl = Netlist::new("wide");
        let bus: Vec<NodeId> = (0..65).map(|i| nl.add_input(format!("a{i}"))).collect();
        let g = nl.add_logic("g", vec![bus[0]], TruthTable::buffer());
        nl.mark_output("o", g);
        let sim = CycleSim::new(&nl);
        sim.word(&bus);
    }

    #[test]
    fn idle_cycles_produce_no_transitions() {
        let mut nl = Netlist::new("idle");
        let a = nl.add_input("a");
        let g = nl.add_logic("g", vec![a], TruthTable::inverter());
        nl.mark_output("o", g);
        let mut sim = CycleSim::new(&nl);
        sim.step(&[true]);
        let r = sim.step(&[true]);
        assert_eq!(r, CycleReport::default());
    }

    #[test]
    fn summary_text_roundtrips_aggregates() {
        let mut nl = Netlist::new("sum");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let c = nl.add_input("c");
        let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
        let h = nl.add_logic("h", vec![g, c], TruthTable::and(2));
        nl.mark_output("o", h);
        let stats = crate::run_random(&nl, 200, 7);
        let back = SimStats::from_summary_text(&stats.to_summary_text()).unwrap();
        assert_eq!(back.cycles, stats.cycles);
        assert_eq!(back.total_transitions, stats.total_transitions);
        assert_eq!(back.functional_transitions, stats.functional_transitions);
        assert_eq!(back.glitch_transitions, stats.glitch_transitions);
        assert_eq!(back.per_node.len(), stats.per_node.len());
        assert_eq!(back.glitch_fraction(), stats.glitch_fraction());
        assert_eq!(back.mean_activity(), stats.mean_activity());
    }

    #[test]
    fn summary_text_rejects_garbage() {
        assert!(SimStats::from_summary_text("").is_err());
        assert!(SimStats::from_summary_text("# hlpower sim v2\ncycles 1\n").is_err());
        assert!(SimStats::from_summary_text(
            "# hlpower sim v1\ncycles 1 total 5 functional 2 glitch 2 nodes 4\n"
        )
        .is_err());
        let ok = "# hlpower sim v1\ncycles 1 total 5 functional 3 glitch 2 nodes 4\n";
        let s = SimStats::from_summary_text(ok).unwrap();
        assert_eq!(s.total_transitions, 5);
        assert_eq!(s.per_node, vec![0; 4]);
    }

    #[test]
    fn summary_bin_roundtrips_and_agrees_with_text() {
        let mut nl = Netlist::new("sum");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
        nl.mark_output("o", g);
        let stats = crate::run_random(&nl, 150, 3);
        let bin = stats.to_summary_bin();
        let back = SimStats::from_summary_bin(&bin).unwrap();
        assert_eq!(back.cycles, stats.cycles);
        assert_eq!(back.total_transitions, stats.total_transitions);
        assert_eq!(back.functional_transitions, stats.functional_transitions);
        assert_eq!(back.glitch_transitions, stats.glitch_transitions);
        assert_eq!(back.per_node.len(), stats.per_node.len());
        // Binary and text carry the same summary.
        let via_text = SimStats::from_summary_text(&stats.to_summary_text()).unwrap();
        assert_eq!(back.total_transitions, via_text.total_transitions);
        // Re-encoding is byte-stable.
        assert_eq!(back.to_summary_bin(), bin);
    }

    #[test]
    fn summary_bin_rejects_corruption_and_inconsistency() {
        let stats = SimStats {
            cycles: 1,
            total_transitions: 5,
            functional_transitions: 3,
            glitch_transitions: 2,
            per_node: vec![0; 4],
        };
        let good = stats.to_summary_bin();
        for cut in 0..good.len() {
            assert!(SimStats::from_summary_bin(&good[..cut]).is_err());
        }
        assert!(SimStats::from_summary_bin(b"# hlpower sim v1\n").is_err());
        // A split where functional + glitch != total fails even inside a
        // well-formed container.
        let bad = SimStats {
            functional_transitions: 4,
            ..stats
        };
        let mut bytes = bad.to_summary_bin();
        assert!(SimStats::from_summary_bin(&bytes).is_err());
        // ...and a checksum flip is caught.
        bytes = good.clone();
        let n = bytes.len();
        bytes[n - 1] ^= 0xff;
        assert!(SimStats::from_summary_bin(&bytes).is_err());
    }
}
