//! Zero-delay functional evaluation.
//!
//! The [`Evaluator`] computes stable node values per clock cycle without
//! modelling propagation delay. It is the *verification oracle* of the
//! workspace: every transformation (technology mapping, datapath
//! elaboration) is checked for functional equivalence against it, and the
//! unit-delay simulator's settled values must agree with it cycle by
//! cycle.

use netlist::{Netlist, NodeId, NodeKind};

/// Zero-delay, cycle-accurate evaluator for a netlist.
///
/// # Examples
///
/// ```
/// use gatesim::Evaluator;
/// use netlist::{Netlist, TruthTable};
///
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_logic("g", vec![a, b], TruthTable::xor(2));
/// nl.mark_output("o", g);
/// let mut ev = Evaluator::new(&nl);
/// ev.set_input(a, true);
/// ev.set_input(b, false);
/// ev.settle();
/// assert!(ev.value(g));
/// ```
#[derive(Debug)]
pub struct Evaluator<'a> {
    nl: &'a Netlist,
    order: Vec<NodeId>,
    values: Vec<bool>,
}

impl<'a> Evaluator<'a> {
    /// Creates an evaluator with latches at their init values and inputs
    /// low.
    ///
    /// # Panics
    ///
    /// Panics if the netlist fails [`Netlist::check`].
    pub fn new(nl: &'a Netlist) -> Self {
        nl.check().expect("evaluator input must be a valid netlist");
        let order = nl.topo_order();
        let mut ev = Evaluator {
            nl,
            order,
            values: vec![false; nl.num_nodes()],
        };
        ev.reset();
        ev
    }

    /// Resets latches to their init values and primary inputs to 0, then
    /// settles.
    pub fn reset(&mut self) {
        for (id, node) in self.nl.nodes() {
            self.values[id.index()] = match &node.kind {
                NodeKind::Constant(v) => *v,
                NodeKind::Latch { init, .. } => *init,
                _ => false,
            };
        }
        self.settle();
    }

    /// Sets one primary input.
    ///
    /// # Panics
    ///
    /// Panics if `id` is not a primary input.
    pub fn set_input(&mut self, id: NodeId, value: bool) {
        assert!(
            matches!(self.nl.node(id).kind, NodeKind::Input),
            "{id} is not a primary input"
        );
        self.values[id.index()] = value;
    }

    /// Sets a little-endian input word.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is wider than 64 — a `>> i` past bit 63 would
    /// panic in debug builds but silently wrap in release, replaying
    /// `value`'s low bits into the high bus bits.
    pub fn set_word(&mut self, bits: &[NodeId], value: u64) {
        assert!(
            bits.len() <= 64,
            "word write limited to 64 bits, bus has {}",
            bits.len()
        );
        for (i, &b) in bits.iter().enumerate() {
            self.set_input(b, (value >> i) & 1 == 1);
        }
    }

    /// Propagates all combinational logic (zero delay).
    pub fn settle(&mut self) {
        for &id in &self.order {
            if let NodeKind::Logic { fanins, table } = &self.nl.node(id).kind {
                let mut row = 0u32;
                for (k, f) in fanins.iter().enumerate() {
                    if self.values[f.index()] {
                        row |= 1 << k;
                    }
                }
                self.values[id.index()] = table.eval(row);
            }
        }
    }

    /// Clocks every latch: `Q := D` simultaneously, then settles.
    pub fn step_clock(&mut self) {
        let captured: Vec<(usize, bool)> = self
            .nl
            .latches()
            .iter()
            .map(|&l| match &self.nl.node(l).kind {
                NodeKind::Latch { data, .. } => (l.index(), self.values[data.index()]),
                _ => unreachable!(),
            })
            .collect();
        for (idx, v) in captured {
            self.values[idx] = v;
        }
        self.settle();
    }

    /// Current value of a node (after [`Evaluator::settle`]).
    pub fn value(&self, id: NodeId) -> bool {
        self.values[id.index()]
    }

    /// Reads a little-endian word of node values.
    ///
    /// # Panics
    ///
    /// Panics if `bits` is wider than 64 — a `<< i` past bit 63 would
    /// panic in debug builds but silently wrap in release, folding bit
    /// `i` onto bit `i - 64`.
    pub fn word(&self, bits: &[NodeId]) -> u64 {
        assert!(
            bits.len() <= 64,
            "word read limited to 64 bits, bus has {}",
            bits.len()
        );
        bits.iter().enumerate().fold(0u64, |acc, (i, &b)| {
            acc | ((self.values[b.index()] as u64) << i)
        })
    }

    /// Snapshot of all node values (indexed by node id).
    pub fn values(&self) -> &[bool] {
        &self.values
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{cells, Netlist, TruthTable};

    #[test]
    fn combinational_eval() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
        nl.mark_output("o", g);
        let mut ev = Evaluator::new(&nl);
        for (x, y) in [(false, false), (true, false), (true, true)] {
            ev.set_input(a, x);
            ev.set_input(b, y);
            ev.settle();
            assert_eq!(ev.value(g), x && y);
        }
    }

    #[test]
    fn word_helpers() {
        let mut nl = Netlist::new("w");
        let a: Vec<NodeId> = (0..8).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..8).map(|i| nl.add_input(format!("b{i}"))).collect();
        let (sum, _) = cells::ripple_adder(&mut nl, "add", &a, &b, None);
        for (i, s) in sum.iter().enumerate() {
            nl.mark_output(format!("s{i}"), *s);
        }
        let mut ev = Evaluator::new(&nl);
        ev.set_word(&a, 100);
        ev.set_word(&b, 55);
        ev.settle();
        assert_eq!(ev.word(&sum), 155);
    }

    #[test]
    fn sequential_counterish() {
        // q' = q XOR 1 : toggles every cycle.
        let mut nl = Netlist::new("t");
        let one = nl.add_constant("one", true);
        let q = nl.add_latch("q", false);
        let d = nl.add_logic("d", vec![q, one], TruthTable::xor(2));
        nl.set_latch_data(q, d);
        nl.mark_output("o", q);
        let mut ev = Evaluator::new(&nl);
        let mut seen = Vec::new();
        for _ in 0..4 {
            seen.push(ev.value(q));
            ev.step_clock();
        }
        assert_eq!(seen, vec![false, true, false, true]);
    }

    #[test]
    fn latch_init_respected() {
        let mut nl = Netlist::new("init");
        let q = nl.add_latch("q", true);
        let d = nl.add_logic("d", vec![q], TruthTable::buffer());
        nl.set_latch_data(q, d);
        nl.mark_output("o", q);
        let ev = Evaluator::new(&nl);
        assert!(ev.value(q));
    }

    #[test]
    fn enabled_register_holds_value() {
        let mut nl = Netlist::new("reg");
        let d: Vec<NodeId> = (0..4).map(|i| nl.add_input(format!("d{i}"))).collect();
        let en = nl.add_input("en");
        let reg = cells::register_word(&mut nl, "r", 4, 0);
        cells::connect_register_with_enable(&mut nl, "r", &reg, en, &d);
        nl.mark_output("q0", reg.q[0]);
        let mut ev = Evaluator::new(&nl);
        ev.set_word(&d, 9);
        ev.set_input(en, true);
        ev.settle();
        ev.step_clock();
        assert_eq!(ev.word(&reg.q), 9);
        // disable and change the input: register must hold
        ev.set_word(&d, 5);
        ev.set_input(en, false);
        ev.settle();
        ev.step_clock();
        assert_eq!(ev.word(&reg.q), 9);
        // enable again
        ev.set_input(en, true);
        ev.settle();
        ev.step_clock();
        assert_eq!(ev.word(&reg.q), 5);
    }

    #[test]
    #[should_panic(expected = "word read limited to 64 bits")]
    fn word_rejects_buses_wider_than_64() {
        let mut nl = Netlist::new("wide");
        let bus: Vec<NodeId> = (0..70).map(|i| nl.add_input(format!("a{i}"))).collect();
        let g = nl.add_logic("g", vec![bus[0]], TruthTable::buffer());
        nl.mark_output("o", g);
        let ev = Evaluator::new(&nl);
        ev.word(&bus);
    }

    #[test]
    #[should_panic(expected = "word write limited to 64 bits")]
    fn set_word_rejects_buses_wider_than_64() {
        let mut nl = Netlist::new("wide");
        let bus: Vec<NodeId> = (0..70).map(|i| nl.add_input(format!("a{i}"))).collect();
        let g = nl.add_logic("g", vec![bus[0]], TruthTable::buffer());
        nl.mark_output("o", g);
        let mut ev = Evaluator::new(&nl);
        ev.set_word(&bus, 1);
    }

    #[test]
    #[should_panic(expected = "not a primary input")]
    fn set_input_rejects_logic_nodes() {
        let mut nl = Netlist::new("bad");
        let a = nl.add_input("a");
        let g = nl.add_logic("g", vec![a], TruthTable::buffer());
        nl.mark_output("o", g);
        let mut ev = Evaluator::new(&nl);
        ev.set_input(g, true);
    }
}
