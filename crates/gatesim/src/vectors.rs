//! Stimulus generation and simulation drivers.
//!
//! The paper drives each benchmark with 1000 random input vectors from the
//! Quartus II `.vwf` editor; [`VectorSource`] and [`run_random`] are the
//! deterministic, seeded equivalents. [`run_with`] hands the caller full
//! control of the per-cycle vector — the HLS flow uses it to combine
//! random data inputs with schedule-driven control signals.

use crate::event::{CycleSim, SimStats};
use netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random vector source.
#[derive(Debug)]
pub struct VectorSource {
    rng: StdRng,
}

impl VectorSource {
    /// Creates a source from a seed.
    pub fn new(seed: u64) -> Self {
        VectorSource {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a vector of `n` uniform random bits.
    pub fn next_vector(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.rng.gen_bool(0.5)).collect()
    }

    /// Fills `bits` with uniform random values.
    pub fn fill(&mut self, bits: &mut [bool]) {
        for b in bits {
            *b = self.rng.gen_bool(0.5);
        }
    }
}

/// Simulates `cycles` clock cycles with uniform random primary-input
/// vectors (the paper's 1000-random-vector methodology) and returns the
/// cumulative statistics.
///
/// # Examples
///
/// ```
/// use netlist::{Netlist, TruthTable};
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
/// nl.mark_output("o", g);
/// let stats = gatesim::run_random(&nl, 100, 42);
/// assert_eq!(stats.cycles, 100);
/// ```
pub fn run_random(nl: &Netlist, cycles: u64, seed: u64) -> SimStats {
    let mut sim = CycleSim::new(nl);
    let mut src = VectorSource::new(seed);
    let mut vector = vec![false; nl.inputs().len()];
    for _ in 0..cycles {
        src.fill(&mut vector);
        sim.step(&vector);
    }
    sim.stats().clone()
}

/// Simulates `cycles` clock cycles, asking `drive` to fill each cycle's
/// primary-input vector (`drive(cycle_index, &mut vector)`), and returns
/// the cumulative statistics.
pub fn run_with(nl: &Netlist, cycles: u64, mut drive: impl FnMut(u64, &mut [bool])) -> SimStats {
    let mut sim = CycleSim::new(nl);
    let mut vector = vec![false; nl.inputs().len()];
    for c in 0..cycles {
        drive(c, &mut vector);
        sim.step(&vector);
    }
    sim.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{cells, NodeId};

    #[test]
    fn vectors_are_deterministic() {
        let mut a = VectorSource::new(7);
        let mut b = VectorSource::new(7);
        assert_eq!(a.next_vector(64), b.next_vector(64));
        let mut c = VectorSource::new(8);
        assert_ne!(a.next_vector(64), c.next_vector(64));
    }

    #[test]
    fn run_random_counts_cycles() {
        let mut nl = Netlist::new("t");
        let a: Vec<NodeId> = (0..4).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..4).map(|i| nl.add_input(format!("b{i}"))).collect();
        let (s, _) = cells::ripple_adder(&mut nl, "add", &a, &b, None);
        for (i, x) in s.iter().enumerate() {
            nl.mark_output(format!("s{i}"), *x);
        }
        let stats = run_random(&nl, 200, 1);
        assert_eq!(stats.cycles, 200);
        assert!(stats.total_transitions > 0);
        // PI switching should be close to 0.5 per input per cycle.
        let pi_toggles: u64 = nl.inputs().iter().map(|i| stats.per_node[i.index()]).sum();
        let rate = pi_toggles as f64 / (200.0 * 8.0);
        assert!((rate - 0.5).abs() < 0.1, "PI toggle rate {rate}");
    }

    #[test]
    fn run_with_drives_control() {
        // Mux whose select we toggle deterministically.
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_input("s");
        let m = cells::mux2(&mut nl, "mx", s, a, b);
        nl.mark_output("o", m);
        let stats = run_with(&nl, 10, |c, v| {
            v[0] = true; // a
            v[1] = false; // b
            v[2] = c % 2 == 1; // s toggles
        });
        assert_eq!(stats.cycles, 10);
        // Cycle 0 raises `a` (m: 0->1), then every s toggle (cycles 1..=9)
        // flips m: 10 transitions total.
        let m_toggles = stats.per_node[m.index()];
        assert_eq!(m_toggles, 10);
    }

    #[test]
    fn same_seed_same_stats() {
        let mut nl = Netlist::new("d");
        let a: Vec<NodeId> = (0..5).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..5).map(|i| nl.add_input(format!("b{i}"))).collect();
        let p = cells::array_multiplier(&mut nl, "m", &a, &b);
        for (i, x) in p.iter().enumerate() {
            nl.mark_output(format!("p{i}"), *x);
        }
        let s1 = run_random(&nl, 100, 99);
        let s2 = run_random(&nl, 100, 99);
        assert_eq!(s1.total_transitions, s2.total_transitions);
        assert_eq!(s1.glitch_transitions, s2.glitch_transitions);
    }
}
