//! Stimulus generation and simulation drivers.
//!
//! The paper drives each benchmark with 1000 random input vectors from the
//! Quartus II `.vwf` editor; [`VectorSource`] and [`run_random`] are the
//! deterministic, seeded equivalents. [`run_with`] hands the caller full
//! control of the per-cycle vector — the HLS flow uses it to combine
//! random data inputs with schedule-driven control signals.

use crate::event::{CycleSim, SimStats};
use netlist::Netlist;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic random vector source.
#[derive(Debug)]
pub struct VectorSource {
    rng: StdRng,
}

impl VectorSource {
    /// Creates a source from a seed.
    pub fn new(seed: u64) -> Self {
        VectorSource {
            rng: StdRng::seed_from_u64(seed),
        }
    }

    /// Draws a vector of `n` uniform random bits.
    pub fn next_vector(&mut self, n: usize) -> Vec<bool> {
        (0..n).map(|_| self.rng.gen_bool(0.5)).collect()
    }

    /// Fills `bits` with uniform random values.
    pub fn fill(&mut self, bits: &mut [bool]) {
        for b in bits {
            *b = self.rng.gen_bool(0.5);
        }
    }
}

/// Derives the vector-stream seed of one simulation lane.
///
/// Lane 0 keeps the caller's seed **unchanged** — so a single-lane
/// word-parallel run replays the scalar stream byte for byte — and every
/// other lane XORs in the SplitMix64 finalizer of its lane index (the
/// finalizer maps 0 to 0, which is what makes lane 0 the identity).
///
/// # Examples
///
/// ```
/// assert_eq!(gatesim::lane_seed(42, 0), 42, "lane 0 is the scalar stream");
/// assert_ne!(gatesim::lane_seed(42, 1), gatesim::lane_seed(42, 2));
/// ```
pub fn lane_seed(seed: u64, lane: usize) -> u64 {
    // SplitMix64 finalizer: a bijective mixer with finalize(0) == 0.
    let mut z = lane as u64;
    z = (z ^ (z >> 30)).wrapping_mul(0xBF58476D1CE4E5B9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94D049BB133111EB);
    seed ^ (z ^ (z >> 31))
}

/// Deterministic random vector source for word-parallel simulation: one
/// independent [`VectorSource`] per lane, each seeded via [`lane_seed`].
///
/// Lane `L` draws exactly the bit stream `VectorSource::new(lane_seed(
/// seed, L))` would, in the same per-cycle order, so word-parallel runs
/// decompose lane-by-lane into scalar runs.
#[derive(Debug)]
pub struct WordVectorSource {
    sources: Vec<VectorSource>,
    scratch: Vec<bool>,
}

impl WordVectorSource {
    /// Creates one stream per lane from a base seed.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds 64.
    pub fn new(seed: u64, lanes: usize) -> Self {
        Self::with_lane_offset(seed, lanes, 0)
    }

    /// Creates one stream per lane, seeding lane `L` as **global** lane
    /// `offset + L` (i.e. [`lane_seed`]`(seed, offset + L)`). This is the
    /// 64-lane sub-run of a wider slab simulation: word `j` of a
    /// [`crate::SlabSim`] run equals a [`crate::WordSim`] run driven with
    /// `offset = 64 j` — the lane-decomposition identity the differential
    /// tests enforce.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds 64, or if `offset + lanes`
    /// exceeds [`crate::MAX_SLAB_LANES`].
    pub fn with_lane_offset(seed: u64, lanes: usize, offset: usize) -> Self {
        assert!((1..=64).contains(&lanes), "lanes must be in 1..=64");
        assert!(
            offset + lanes <= crate::MAX_SLAB_LANES,
            "lane offset {offset} + {lanes} lanes exceeds {}",
            crate::MAX_SLAB_LANES
        );
        WordVectorSource {
            sources: (0..lanes)
                .map(|l| VectorSource::new(lane_seed(seed, offset + l)))
                .collect(),
            scratch: Vec::new(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.sources.len()
    }

    /// The per-lane scalar stream (lane `L` of every word drawn so far
    /// came from this source). Exposed so drivers can interleave word
    /// draws with per-lane scalar draws without desynchronizing.
    pub fn lane(&mut self, lane: usize) -> &mut VectorSource {
        &mut self.sources[lane]
    }

    /// Fills `words` with one `u64` per primary input: bit `L` of
    /// `words[i]` is lane `L`'s fresh random value for input `i`.
    pub fn fill_words(&mut self, words: &mut [u64]) {
        words.fill(0);
        self.scratch.resize(words.len(), false);
        for (lane, src) in self.sources.iter_mut().enumerate() {
            src.fill(&mut self.scratch);
            for (w, &b) in words.iter_mut().zip(&self.scratch) {
                *w |= (b as u64) << lane;
            }
        }
    }

    /// Draws `n` fresh input words (see [`WordVectorSource::fill_words`]).
    pub fn next_words(&mut self, n: usize) -> Vec<u64> {
        let mut words = vec![0u64; n];
        self.fill_words(&mut words);
        words
    }
}

/// Deterministic random vector source for slab simulation: one
/// independent [`VectorSource`] per lane, up to
/// [`crate::MAX_SLAB_LANES`], each seeded via [`lane_seed`] on the
/// **global** lane index.
///
/// Global lane `L` (word `L / 64`, bit `L % 64`) draws exactly the bit
/// stream `VectorSource::new(lane_seed(seed, L))` would, in the same
/// per-cycle order — so slab runs decompose lane-by-lane into scalar
/// runs and word-by-word into [`WordVectorSource::with_lane_offset`]
/// sub-runs.
#[derive(Debug)]
pub struct SlabVectorSource {
    sources: Vec<VectorSource>,
    words: usize,
    scratch: Vec<bool>,
}

impl SlabVectorSource {
    /// Creates one stream per lane from a base seed. The slab width is
    /// `lanes.div_ceil(64)` words per input.
    ///
    /// # Panics
    ///
    /// Panics if `lanes` is 0 or exceeds [`crate::MAX_SLAB_LANES`].
    pub fn new(seed: u64, lanes: usize) -> Self {
        assert!(
            (1..=crate::MAX_SLAB_LANES).contains(&lanes),
            "lanes must be in 1..={}",
            crate::MAX_SLAB_LANES
        );
        SlabVectorSource {
            sources: (0..lanes)
                .map(|l| VectorSource::new(lane_seed(seed, l)))
                .collect(),
            words: lanes.div_ceil(64),
            scratch: Vec::new(),
        }
    }

    /// Number of lanes.
    pub fn lanes(&self) -> usize {
        self.sources.len()
    }

    /// Slab words per input (`lanes.div_ceil(64)`).
    pub fn words(&self) -> usize {
        self.words
    }

    /// The per-lane scalar stream (global lane `L` of every slab drawn so
    /// far came from this source). Exposed so drivers can interleave slab
    /// draws with per-lane scalar draws without desynchronizing.
    pub fn lane(&mut self, lane: usize) -> &mut VectorSource {
        &mut self.sources[lane]
    }

    /// Fills `slabs` with [`SlabVectorSource::words`] words per primary
    /// input, input-major (`slabs[input * words + w]`): bit `L` of word
    /// `w` is global lane `w * 64 + L`'s fresh random value for that
    /// input.
    ///
    /// # Panics
    ///
    /// Panics if `slabs.len()` is not a multiple of the slab width.
    pub fn fill_slab(&mut self, slabs: &mut [u64]) {
        let width = self.words;
        assert_eq!(
            slabs.len() % width,
            0,
            "slab buffer must hold {width} word(s) per input"
        );
        let inputs = slabs.len() / width;
        slabs.fill(0);
        self.scratch.resize(inputs, false);
        for (lane, src) in self.sources.iter_mut().enumerate() {
            src.fill(&mut self.scratch);
            let (w, bit) = (lane / 64, lane % 64);
            for (i, &b) in self.scratch.iter().enumerate() {
                slabs[i * width + w] |= (b as u64) << bit;
            }
        }
    }
}

/// Simulates `cycles` clock cycles with uniform random primary-input
/// vectors (the paper's 1000-random-vector methodology) and returns the
/// cumulative statistics.
///
/// # Examples
///
/// ```
/// use netlist::{Netlist, TruthTable};
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let b = nl.add_input("b");
/// let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
/// nl.mark_output("o", g);
/// let stats = gatesim::run_random(&nl, 100, 42);
/// assert_eq!(stats.cycles, 100);
/// ```
pub fn run_random(nl: &Netlist, cycles: u64, seed: u64) -> SimStats {
    let mut sim = CycleSim::new(nl);
    let mut src = VectorSource::new(seed);
    let mut vector = vec![false; nl.inputs().len()];
    for _ in 0..cycles {
        src.fill(&mut vector);
        sim.step(&vector);
    }
    sim.stats().clone()
}

/// Simulates `cycles` clock cycles, asking `drive` to fill each cycle's
/// primary-input vector (`drive(cycle_index, &mut vector)`), and returns
/// the cumulative statistics.
pub fn run_with(nl: &Netlist, cycles: u64, mut drive: impl FnMut(u64, &mut [bool])) -> SimStats {
    let mut sim = CycleSim::new(nl);
    let mut vector = vec![false; nl.inputs().len()];
    for c in 0..cycles {
        drive(c, &mut vector);
        sim.step(&vector);
    }
    sim.stats().clone()
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{cells, NodeId};

    #[test]
    fn lane_zero_replays_the_scalar_stream() {
        assert_eq!(lane_seed(1234, 0), 1234);
        let mut word = WordVectorSource::new(1234, 4);
        let mut scalar = VectorSource::new(1234);
        for _ in 0..5 {
            let words = word.next_words(8);
            let bits = scalar.next_vector(8);
            for (w, b) in words.iter().zip(&bits) {
                assert_eq!(w & 1 == 1, *b, "lane 0 must equal the scalar draw");
            }
        }
    }

    #[test]
    fn word_lanes_decompose_into_scalar_sources() {
        let seed = 77;
        let lanes = 6;
        let mut word = WordVectorSource::new(seed, lanes);
        let mut scalars: Vec<VectorSource> = (0..lanes)
            .map(|l| VectorSource::new(lane_seed(seed, l)))
            .collect();
        for _ in 0..4 {
            let words = word.next_words(5);
            for (l, s) in scalars.iter_mut().enumerate() {
                let bits = s.next_vector(5);
                for (w, b) in words.iter().zip(&bits) {
                    assert_eq!((w >> l) & 1 == 1, *b, "lane {l}");
                }
            }
        }
    }

    #[test]
    fn lane_seeds_are_distinct() {
        let seeds: std::collections::HashSet<u64> = (0..64).map(|l| lane_seed(42, l)).collect();
        assert_eq!(seeds.len(), 64, "64 lanes need 64 distinct streams");
    }

    #[test]
    fn vectors_are_deterministic() {
        let mut a = VectorSource::new(7);
        let mut b = VectorSource::new(7);
        assert_eq!(a.next_vector(64), b.next_vector(64));
        let mut c = VectorSource::new(8);
        assert_ne!(a.next_vector(64), c.next_vector(64));
    }

    #[test]
    fn run_random_counts_cycles() {
        let mut nl = Netlist::new("t");
        let a: Vec<NodeId> = (0..4).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..4).map(|i| nl.add_input(format!("b{i}"))).collect();
        let (s, _) = cells::ripple_adder(&mut nl, "add", &a, &b, None);
        for (i, x) in s.iter().enumerate() {
            nl.mark_output(format!("s{i}"), *x);
        }
        let stats = run_random(&nl, 200, 1);
        assert_eq!(stats.cycles, 200);
        assert!(stats.total_transitions > 0);
        // PI switching should be close to 0.5 per input per cycle.
        let pi_toggles: u64 = nl.inputs().iter().map(|i| stats.per_node[i.index()]).sum();
        let rate = pi_toggles as f64 / (200.0 * 8.0);
        assert!((rate - 0.5).abs() < 0.1, "PI toggle rate {rate}");
    }

    #[test]
    fn run_with_drives_control() {
        // Mux whose select we toggle deterministically.
        let mut nl = Netlist::new("m");
        let a = nl.add_input("a");
        let b = nl.add_input("b");
        let s = nl.add_input("s");
        let m = cells::mux2(&mut nl, "mx", s, a, b);
        nl.mark_output("o", m);
        let stats = run_with(&nl, 10, |c, v| {
            v[0] = true; // a
            v[1] = false; // b
            v[2] = c % 2 == 1; // s toggles
        });
        assert_eq!(stats.cycles, 10);
        // Cycle 0 raises `a` (m: 0->1), then every s toggle (cycles 1..=9)
        // flips m: 10 transitions total.
        let m_toggles = stats.per_node[m.index()];
        assert_eq!(m_toggles, 10);
    }

    #[test]
    fn same_seed_same_stats() {
        let mut nl = Netlist::new("d");
        let a: Vec<NodeId> = (0..5).map(|i| nl.add_input(format!("a{i}"))).collect();
        let b: Vec<NodeId> = (0..5).map(|i| nl.add_input(format!("b{i}"))).collect();
        let p = cells::array_multiplier(&mut nl, "m", &a, &b);
        for (i, x) in p.iter().enumerate() {
            nl.mark_output(format!("p{i}"), *x);
        }
        let s1 = run_random(&nl, 100, 99);
        let s2 = run_random(&nl, 100, 99);
        assert_eq!(s1.total_transitions, s2.total_transitions);
        assert_eq!(s1.glitch_transitions, s2.glitch_transitions);
    }
}
