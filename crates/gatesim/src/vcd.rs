//! VCD (Value Change Dump) waveform export.
//!
//! Records cycle-accurate waveforms of selected nets across a stimulus
//! sequence, for inspection in GTKWave or any VCD viewer — the debugging
//! companion to the toggle statistics. One VCD timestep per clock cycle
//! (settled values; per-cycle glitches are reported by
//! [`crate::CycleSim`]'s counters rather than drawn).

use crate::eval::Evaluator;
use netlist::{Netlist, NodeId, NodeKind};

/// Builds a VCD identifier (printable ASCII 33..=126) for a signal index.
fn vcd_id(mut index: usize) -> String {
    let mut s = String::new();
    loop {
        s.push(char::from(33 + (index % 94) as u8));
        index /= 94;
        if index == 0 {
            break;
        }
    }
    s
}

/// Dumps a VCD trace of `signals` (or of every input, latch, and output
/// driver when `None`) across the given per-cycle input vectors. Each
/// vector lists one value per primary input in [`Netlist::inputs`] order;
/// latches clock between vectors exactly as in [`crate::CycleSim`].
///
/// # Panics
///
/// Panics if the netlist is invalid or a vector has the wrong length.
///
/// # Examples
///
/// ```
/// use netlist::{Netlist, TruthTable};
/// let mut nl = Netlist::new("t");
/// let a = nl.add_input("a");
/// let g = nl.add_logic("g", vec![a], TruthTable::inverter());
/// nl.mark_output("o", g);
/// let vcd = gatesim::dump_vcd(&nl, &[vec![false], vec![true]], None);
/// assert!(vcd.contains("$var wire 1"));
/// assert!(vcd.contains("#1"));
/// ```
pub fn dump_vcd(nl: &Netlist, vectors: &[Vec<bool>], signals: Option<&[NodeId]>) -> String {
    let selected: Vec<NodeId> = match signals {
        Some(s) => s.to_vec(),
        None => {
            let mut auto: Vec<NodeId> = nl.inputs().to_vec();
            auto.extend(nl.latches().iter().copied());
            for (_, id) in nl.outputs() {
                if !auto.contains(id) {
                    auto.push(*id);
                }
            }
            auto
        }
    };
    let mut out = String::new();
    out.push_str("$date hlpower gatesim $end\n");
    out.push_str("$version hlpower gatesim $end\n");
    out.push_str("$timescale 1 ns $end\n");
    out.push_str(&format!("$scope module {} $end\n", nl.name()));
    for (k, &id) in selected.iter().enumerate() {
        let kind = match nl.node(id).kind {
            NodeKind::Latch { .. } => "reg",
            _ => "wire",
        };
        out.push_str(&format!(
            "$var {kind} 1 {} {} $end\n",
            vcd_id(k),
            nl.node(id).name
        ));
    }
    out.push_str("$upscope $end\n$enddefinitions $end\n");

    let mut ev = Evaluator::new(nl);
    let mut last: Vec<Option<bool>> = vec![None; selected.len()];
    for (cycle, vector) in vectors.iter().enumerate() {
        assert_eq!(vector.len(), nl.inputs().len(), "one value per input");
        if cycle > 0 {
            ev.step_clock();
        }
        for (k, &i) in nl.inputs().iter().enumerate() {
            ev.set_input(i, vector[k]);
        }
        ev.settle();
        let mut changes = String::new();
        for (k, &id) in selected.iter().enumerate() {
            let v = ev.value(id);
            if last[k] != Some(v) {
                last[k] = Some(v);
                changes.push_str(&format!("{}{}\n", if v { '1' } else { '0' }, vcd_id(k)));
            }
        }
        if !changes.is_empty() {
            out.push_str(&format!("#{cycle}\n"));
            if cycle == 0 {
                out.push_str("$dumpvars\n");
            }
            out.push_str(&changes);
            if cycle == 0 {
                out.push_str("$end\n");
            }
        }
    }
    out.push_str(&format!("#{}\n", vectors.len()));
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use netlist::{cells, TruthTable};

    #[test]
    fn vcd_ids_are_unique_and_printable() {
        let ids: Vec<String> = (0..300).map(vcd_id).collect();
        let mut dedup = ids.clone();
        dedup.sort();
        dedup.dedup();
        assert_eq!(dedup.len(), ids.len());
        for id in &ids {
            assert!(id.chars().all(|c| ('!'..='~').contains(&c)), "{id:?}");
        }
    }

    #[test]
    fn counter_waveform() {
        // 2-bit counter; the LSB toggles every cycle in the dump.
        let mut nl = Netlist::new("cnt");
        let one = cells::const_word(&mut nl, "k", 1, 2);
        let state = cells::register_word(&mut nl, "q", 2, 0);
        let (next, _) = cells::ripple_adder(&mut nl, "inc", &state.q, &one, None);
        cells::connect_register(&mut nl, &state, &next);
        nl.mark_output("q0", state.q[0]);
        nl.mark_output("q1", state.q[1]);
        let vectors = vec![vec![]; 6];
        let vcd = dump_vcd(&nl, &vectors, Some(&state.q));
        assert!(vcd.contains("$var reg 1 ! q_q0 $end"));
        // q0 toggles every cycle: one change line per timestep.
        let q0_changes = vcd
            .lines()
            .filter(|l| l.ends_with('!') && l.len() <= 2)
            .count();
        assert_eq!(q0_changes, 6, "{vcd}");
        // q1 toggles every other cycle.
        let q1_changes = vcd
            .lines()
            .filter(|l| l.ends_with('"') && l.len() <= 2)
            .count();
        assert_eq!(q1_changes, 3);
    }

    #[test]
    fn only_changes_are_dumped() {
        let mut nl = Netlist::new("c");
        let a = nl.add_input("a");
        let g = nl.add_logic("g", vec![a], TruthTable::buffer());
        nl.mark_output("o", g);
        let vectors = vec![vec![false], vec![false], vec![true], vec![true]];
        let vcd = dump_vcd(&nl, &vectors, None);
        // timestep markers only where something changed (plus the final
        // end-of-trace marker)
        assert!(vcd.contains("#0"));
        assert!(!vcd.contains("#1\n"), "no change at cycle 1:\n{vcd}");
        assert!(vcd.contains("#2"));
        assert!(vcd.contains("#4"), "end marker");
    }

    #[test]
    fn default_selection_covers_io_and_state() {
        let mut nl = Netlist::new("sel");
        let a = nl.add_input("a");
        let q = nl.add_latch("q", false);
        let d = nl.add_logic("d", vec![a, q], TruthTable::xor(2));
        nl.set_latch_data(q, d);
        nl.mark_output("o", d);
        let vcd = dump_vcd(&nl, &vec![vec![true]; 3], None);
        assert!(vcd.contains("$var wire 1 ! a $end"));
        assert!(vcd.contains("$var reg 1 \" q $end"));
        assert!(vcd.contains(" d $end"));
    }
}
