//! Differential tests: the word-parallel simulator against the scalar
//! event simulator.
//!
//! The contract under test is lane-exactness. With one lane and the same
//! vector stream, [`gatesim::WordSim`] must reproduce
//! [`gatesim::CycleSim`] *byte for byte*: final node values, per-node
//! transition counters, and the exact total/functional/glitch split.
//! With many lanes, runs must be deterministic for a fixed seed and must
//! decompose lane-by-lane into scalar runs seeded with
//! [`gatesim::lane_seed`].

use gatesim::{lane_seed, CycleSim, VectorSource, WordSim, WordVectorSource};
use netlist::{cells, Netlist, NodeId, TruthTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn input_bus(nl: &mut Netlist, tag: &str, n: usize) -> Vec<NodeId> {
    (0..n).map(|i| nl.add_input(format!("{tag}{i}"))).collect()
}

fn ripple_adder_netlist(w: usize) -> Netlist {
    let mut nl = Netlist::new("add");
    let a = input_bus(&mut nl, "a", w);
    let b = input_bus(&mut nl, "b", w);
    let (s, _) = cells::ripple_adder(&mut nl, "add", &a, &b, None);
    for (i, x) in s.iter().enumerate() {
        nl.mark_output(format!("s{i}"), *x);
    }
    nl
}

fn array_multiplier_netlist(w: usize) -> Netlist {
    let mut nl = Netlist::new("mul");
    let a = input_bus(&mut nl, "a", w);
    let b = input_bus(&mut nl, "b", w);
    let p = cells::array_multiplier(&mut nl, "m", &a, &b);
    for (i, x) in p.iter().enumerate() {
        nl.mark_output(format!("p{i}"), *x);
    }
    nl
}

/// A random 4-LUT netlist: `gates` logic nodes, each reading up to four
/// distinct earlier nodes through a random truth table. Deep, irregular
/// fanin structure is exactly what stresses the event wheel.
fn random_lut_soup(inputs: usize, gates: usize, seed: u64) -> Netlist {
    let mut rng = StdRng::seed_from_u64(seed);
    let mut nl = Netlist::new("soup");
    let mut pool = input_bus(&mut nl, "x", inputs);
    for g in 0..gates {
        let k = rng.gen_range(1..4usize.min(pool.len()) + 1);
        let mut fanins: Vec<NodeId> = Vec::with_capacity(k);
        while fanins.len() < k {
            let cand = pool[rng.gen_range(0..pool.len())];
            if !fanins.contains(&cand) {
                fanins.push(cand);
            }
        }
        let table = TruthTable::from_fn(k, |_| rng.gen_bool(0.5));
        let id = nl.add_logic(format!("g{g}"), fanins, table);
        pool.push(id);
    }
    // Mark the most recently created gates as outputs so nothing is
    // trivially dead.
    for (i, &id) in pool.iter().rev().take(4).enumerate() {
        nl.mark_output(format!("o{i}"), id);
    }
    nl
}

fn assert_single_lane_matches_scalar(nl: &Netlist, cycles: u64, seed: u64) {
    let name = nl.name();
    let mut scalar = CycleSim::new(nl);
    let mut word = WordSim::new(nl, 1);
    let mut src = VectorSource::new(seed);
    let n = nl.inputs().len();
    for c in 0..cycles {
        let bits = src.next_vector(n);
        let words: Vec<u64> = bits.iter().map(|&b| b as u64).collect();
        let sr = scalar.step(&bits);
        let wr = word.step(&words);
        assert_eq!(sr, wr, "{name}: cycle {c} report");
    }
    for (id, _) in nl.nodes() {
        assert_eq!(
            scalar.value(id),
            word.value(id, 0),
            "{name}: final value of {id}"
        );
    }
    let s = scalar.stats();
    let w = word.stats();
    assert_eq!(s.cycles, w.cycles, "{name}");
    assert_eq!(s.total_transitions, w.total_transitions, "{name}");
    assert_eq!(s.functional_transitions, w.functional_transitions, "{name}");
    assert_eq!(s.glitch_transitions, w.glitch_transitions, "{name}");
    assert_eq!(s.per_node, w.per_node, "{name}: per-node counters");
}

#[test]
fn single_lane_is_byte_identical_on_ripple_adder() {
    assert_single_lane_matches_scalar(&ripple_adder_netlist(8), 200, 1);
}

#[test]
fn single_lane_is_byte_identical_on_array_multiplier() {
    assert_single_lane_matches_scalar(&array_multiplier_netlist(6), 150, 2);
}

#[test]
fn single_lane_is_byte_identical_on_random_lut_soup() {
    for soup_seed in 0..5 {
        let nl = random_lut_soup(8, 60, soup_seed);
        assert_single_lane_matches_scalar(&nl, 120, soup_seed + 10);
    }
}

#[test]
fn multi_lane_decomposes_into_scalar_runs() {
    // Lane L of a 16-lane run must equal the scalar run seeded with
    // lane_seed(seed, L): same final values and (in aggregate) the same
    // transition accounting.
    let nl = random_lut_soup(6, 40, 3);
    let seed = 21;
    let lanes = 16;
    let steps = 80u64;
    let mut word = WordSim::new(&nl, lanes);
    let mut src = WordVectorSource::new(seed, lanes);
    let mut words = vec![0u64; nl.inputs().len()];
    for _ in 0..steps {
        src.fill_words(&mut words);
        word.step(&words);
    }
    let mut total = 0u64;
    let mut functional = 0u64;
    let mut glitches = 0u64;
    let mut per_node = vec![0u64; nl.num_nodes()];
    for lane in 0..lanes {
        let mut scalar = CycleSim::new(&nl);
        let mut lane_src = VectorSource::new(lane_seed(seed, lane));
        let mut bits = vec![false; nl.inputs().len()];
        for _ in 0..steps {
            lane_src.fill(&mut bits);
            scalar.step(&bits);
        }
        for (id, _) in nl.nodes() {
            assert_eq!(
                scalar.value(id),
                word.value(id, lane),
                "lane {lane}: final value of {id}"
            );
        }
        let s = scalar.stats();
        total += s.total_transitions;
        functional += s.functional_transitions;
        glitches += s.glitch_transitions;
        for (acc, x) in per_node.iter_mut().zip(&s.per_node) {
            *acc += x;
        }
    }
    let w = word.stats();
    assert_eq!(w.cycles, steps * lanes as u64);
    assert_eq!(w.total_transitions, total);
    assert_eq!(w.functional_transitions, functional);
    assert_eq!(w.glitch_transitions, glitches);
    assert_eq!(w.per_node, per_node);
}

#[test]
fn multi_lane_runs_are_deterministic_for_a_fixed_seed() {
    let nl = array_multiplier_netlist(5);
    let a = gatesim::run_random_word(&nl, 100, 7, 64);
    let b = gatesim::run_random_word(&nl, 100, 7, 64);
    assert_eq!(a.cycles, b.cycles);
    assert_eq!(a.total_transitions, b.total_transitions);
    assert_eq!(a.functional_transitions, b.functional_transitions);
    assert_eq!(a.glitch_transitions, b.glitch_transitions);
    assert_eq!(a.per_node, b.per_node);
    // A different seed must drive the network differently.
    let c = gatesim::run_random_word(&nl, 100, 8, 64);
    assert_ne!(a.per_node, c.per_node, "distinct seeds, distinct streams");
}
