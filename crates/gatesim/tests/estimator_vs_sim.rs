//! Cross-validation: the probabilistic glitch-aware SA estimator
//! (`activity` crate, paper Section 4) against measured toggle counts from
//! the unit-delay event simulator. Both use the same delay model, so on
//! fanout-free structures the estimate should converge to the measurement;
//! reconvergent fanout introduces correlation the estimator ignores, so
//! those comparisons use loose tolerances.

use activity::{analyze, ActivityConfig};
use gatesim::run_random;
use netlist::{cells, Netlist, NodeId, TruthTable};

const CYCLES: u64 = 4000;

/// Measured per-cycle switching activity of one node.
fn measured(stats: &gatesim::SimStats, id: NodeId) -> f64 {
    stats.per_node[id.index()] as f64 / stats.cycles as f64
}

#[test]
fn xor_tree_estimate_is_exact() {
    // Independent inputs, fanout-free tree: estimator assumptions hold.
    let mut nl = Netlist::new("xt");
    let ins: Vec<NodeId> = (0..4).map(|i| nl.add_input(format!("i{i}"))).collect();
    let x1 = nl.add_logic("x1", vec![ins[0], ins[1]], TruthTable::xor(2));
    let x2 = nl.add_logic("x2", vec![ins[2], ins[3]], TruthTable::xor(2));
    let x3 = nl.add_logic("x3", vec![x1, x2], TruthTable::xor(2));
    nl.mark_output("o", x3);
    let est = analyze(&nl, &ActivityConfig::uniform());
    let sim = run_random(&nl, CYCLES, 7);
    for id in [x1, x2, x3] {
        let e = est.signals[id.index()].total_activity();
        let m = measured(&sim, id);
        assert!(
            (e - m).abs() < 0.04,
            "node {id}: estimated {e:.3} vs measured {m:.3}"
        );
    }
}

#[test]
fn skewed_and_glitches_match() {
    // h = AND(AND(a,b), c): the estimator predicts glitching at time 1;
    // the simulator must see glitches of comparable magnitude.
    let mut nl = Netlist::new("sk");
    let a = nl.add_input("a");
    let b = nl.add_input("b");
    let c = nl.add_input("c");
    let g = nl.add_logic("g", vec![a, b], TruthTable::and(2));
    let h = nl.add_logic("h", vec![g, c], TruthTable::and(2));
    nl.mark_output("o", h);
    let est = analyze(&nl, &ActivityConfig::uniform());
    let sim = run_random(&nl, CYCLES, 11);
    let e = est.signals[h.index()].total_activity();
    let m = measured(&sim, h);
    assert!((e - m).abs() < 0.05, "estimated {e:.3} vs measured {m:.3}");
    // Glitch shares agree in sign and rough magnitude.
    let est_glitch = est.signals[h.index()].glitch_activity();
    assert!(est_glitch > 0.0);
    assert!(sim.glitch_transitions > 0);
}

#[test]
fn adder_totals_track_measurement() {
    // Carry chains reconverge, so allow a generous relative band on the
    // *total* SA; the estimator must still rank glitchy vs quiet circuits
    // correctly (checked in mux_balance_ranking below).
    let w = 6;
    let mut nl = Netlist::new("add");
    let a: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("b{i}"))).collect();
    let (sum, _) = cells::ripple_adder(&mut nl, "fu", &a, &b, None);
    for (i, s) in sum.iter().enumerate() {
        nl.mark_output(format!("s{i}"), *s);
    }
    let est = analyze(&nl, &ActivityConfig::uniform());
    let sim = run_random(&nl, CYCLES, 13);
    let logic_ids: Vec<NodeId> = nl
        .nodes()
        .filter(|(_, n)| matches!(n.kind, netlist::NodeKind::Logic { .. }))
        .map(|(id, _)| id)
        .collect();
    let measured_total: f64 = logic_ids.iter().map(|&id| measured(&sim, id)).sum();
    let ratio = est.total_sa / measured_total;
    assert!(
        (0.7..1.4).contains(&ratio),
        "estimated {:.2} vs measured {measured_total:.2} (ratio {ratio:.2})",
        est.total_sa
    );
}

#[test]
fn mux_balance_ranking_agrees_with_simulation() {
    // The paper's central premise: balanced mux trees glitch less than
    // skewed chains. Both the estimator and the simulator must agree on
    // the ranking.
    fn build(chain: bool) -> (Netlist, usize) {
        let mut nl = Netlist::new(if chain { "chain" } else { "tree" });
        let w = 4;
        let inputs: Vec<netlist::Bus> = (0..6)
            .map(|k| (0..w).map(|i| nl.add_input(format!("in{k}_{i}"))).collect())
            .collect();
        let sels: Vec<NodeId> = (0..cells::mux_select_bits(6))
            .map(|i| nl.add_input(format!("s{i}")))
            .collect();
        let out = if chain {
            cells::mux_chain(&mut nl, "m", &sels, &inputs)
        } else {
            cells::mux_tree(&mut nl, "m", &sels, &inputs)
        };
        for (i, o) in out.iter().enumerate() {
            nl.mark_output(format!("o{i}"), *o);
        }
        let logic = nl.num_logic();
        (nl, logic)
    }
    let (tree, _) = build(false);
    let (chain, _) = build(true);
    let est_tree = analyze(&tree, &ActivityConfig::uniform()).total_sa;
    let est_chain = analyze(&chain, &ActivityConfig::uniform()).total_sa;
    let sim_tree = run_random(&tree, CYCLES, 17).total_transitions;
    let sim_chain = run_random(&chain, CYCLES, 17).total_transitions;
    assert!(
        est_chain > est_tree,
        "estimator: chain {est_chain:.1} vs tree {est_tree:.1}"
    );
    assert!(
        sim_chain > sim_tree,
        "simulator: chain {sim_chain} vs tree {sim_tree}"
    );
}

#[test]
fn multiplier_glitch_fraction_is_substantial() {
    // Array multipliers are the dominant glitch source the paper targets;
    // both views should attribute a large share of activity to glitches.
    let w = 5;
    let mut nl = Netlist::new("mul");
    let a: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("b{i}"))).collect();
    let p = cells::array_multiplier(&mut nl, "m", &a, &b);
    for (i, s) in p.iter().enumerate() {
        nl.mark_output(format!("p{i}"), *s);
    }
    let est = analyze(&nl, &ActivityConfig::uniform());
    let sim = run_random(&nl, CYCLES, 19);
    assert!(
        est.glitch_fraction() > 0.15,
        "estimated glitch fraction {:.2}",
        est.glitch_fraction()
    );
    assert!(
        sim.glitch_fraction() > 0.15,
        "measured glitch fraction {:.2}",
        sim.glitch_fraction()
    );
}
