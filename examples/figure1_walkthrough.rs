//! Reproduces the paper's **Figure 1**: the worked example of iterative
//! functional-unit binding on an 8-operation, 3-control-step CDFG,
//! printing the bipartite matching of every iteration and ending at the
//! figure's final allocation of 2 adders + 1 multiplier.
//!
//! ```text
//! cargo run --release --example figure1_walkthrough
//! ```

use cdfg::{Cdfg, FuType, OpKind, ResourceConstraint, ResourceLibrary, Schedule};
use hlpower::{bind_hlpower, bind_registers, HlPowerConfig, RegBindConfig, SaTable};

fn main() {
    // The CDFG of Figure 1: ops 1..8 (here op0..op7), csteps as drawn:
    //   cstep1: add1 add2 mul3 | cstep2: add4 mul5 | cstep3: add6 mul7 add8
    let mut g = Cdfg::new("figure1");
    let x: Vec<_> = (0..6).map(|i| g.add_input(format!("x{i}"))).collect();
    let (_, v1) = g.add_op(OpKind::Add, x[0], x[1]); // 1+
    let (_, v2) = g.add_op(OpKind::Add, x[2], x[3]); // 2+
    let (_, v3) = g.add_op(OpKind::Mul, x[4], x[5]); // 3x
    let (_, v4) = g.add_op(OpKind::Add, v1, v2); // 4+
    let (_, v5) = g.add_op(OpKind::Mul, v3, v1); // 5x
    let (_, v6) = g.add_op(OpKind::Add, v4, v5); // 6+
    let (_, v7) = g.add_op(OpKind::Mul, v5, v4); // 7x
    let (_, v8) = g.add_op(OpKind::Add, v4, v2); // 8+
    for v in [v6, v7, v8] {
        g.mark_output(v);
    }
    let sched = Schedule {
        cstep: vec![0, 0, 0, 1, 1, 2, 2, 2],
        library: ResourceLibrary::default(),
        num_steps: 3,
    };
    sched.validate(&g, None).expect("legal schedule");

    println!("CDFG (paper Figure 1):");
    for (id, op) in g.ops() {
        println!(
            "  op{} {:4}  @cstep{}",
            id.0 + 1,
            op.kind.to_string(),
            sched.start(id) + 1
        );
    }
    let (step, u_adds) = sched.densest_step_ops(&g, FuType::AddSub);
    let (_, u_muls) = sched.densest_step_ops(&g, FuType::Mul);
    println!(
        "\nset U: adds of cstep{} {:?} + mult {:?} (max-density steps)",
        step + 1,
        u_adds.iter().map(|o| o.0 + 1).collect::<Vec<_>>(),
        u_muls.iter().map(|o| o.0 + 1).collect::<Vec<_>>()
    );

    let rc = ResourceConstraint::new(2, 1);
    let rb = bind_registers(&g, &sched, &RegBindConfig::default());
    let mut table = SaTable::new(8, 4);
    let (fb, trace) = bind_hlpower(&g, &sched, &rb, &rc, &mut table, &HlPowerConfig::default());

    for it in &trace {
        println!(
            "\niteration {} ({} compatible edges):",
            it.iteration, it.num_edges
        );
        for m in &it.merges {
            let u: Vec<u32> = m.u_ops.iter().map(|o| o.0 + 1).collect();
            let v: Vec<u32> = m.v_ops.iter().map(|o| o.0 + 1).collect();
            println!("  merge {v:?} into {u:?}  (edge weight {:.5})", m.weight);
        }
    }

    println!("\nfinal binding:");
    for (i, fu) in fb.fus.iter().enumerate() {
        let ops: Vec<u32> = fu.ops.iter().map(|o| o.0 + 1).collect();
        println!("  fu{i} ({}) <- ops {ops:?}", fu.ty);
    }
    assert_eq!(fb.count(FuType::AddSub), 2, "the figure ends at 2 adders");
    assert_eq!(fb.count(FuType::Mul), 1, "and 1 multiplier");
    println!("\nfinal allocation: 2 adders + 1 multiplier — matches the paper.");
}
