//! Quickstart: bind a small custom kernel with both binders and compare
//! the resulting datapaths end to end.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cdfg::{list_schedule, Cdfg, OpKind, ResourceConstraint, ResourceLibrary};
use hlpower::{
    bind_hlpower, bind_registers, elaborate, execute, mux_report, DatapathConfig, HlPowerConfig,
    RegBindConfig, SaTable,
};
use mapper::{map, MapConfig, MapObjective};

fn main() {
    // 1. Describe the kernel: out = (x0*c0 + x1*c1) - (x2*c2).
    let mut g = Cdfg::new("fir3");
    let xs: Vec<_> = (0..3).map(|i| g.add_input(format!("x{i}"))).collect();
    let cs: Vec<_> = (0..3).map(|i| g.add_input(format!("c{i}"))).collect();
    let (_, p0) = g.add_op(OpKind::Mul, xs[0], cs[0]);
    let (_, p1) = g.add_op(OpKind::Mul, xs[1], cs[1]);
    let (_, p2) = g.add_op(OpKind::Mul, xs[2], cs[2]);
    let (_, s0) = g.add_op(OpKind::Add, p0, p1);
    let (_, out) = g.add_op(OpKind::Sub, s0, p2);
    g.mark_output(out);
    g.check().expect("valid CDFG");
    println!("kernel: {}", g.profile_line());

    // 2. Schedule under a resource constraint (1 adder/subtractor, 1 mult).
    let rc = ResourceConstraint::new(1, 1);
    let sched = list_schedule(&g, &ResourceLibrary::default(), &rc);
    println!("schedule: {} control steps", sched.num_steps);

    // 3. Bind registers (shared by any FU binder), then bind FUs with
    //    HLPower's glitch-aware algorithm.
    let rb = bind_registers(&g, &sched, &RegBindConfig::default());
    let mut sa_table = SaTable::new(8, 4);
    let (fb, trace) = bind_hlpower(
        &g,
        &sched,
        &rb,
        &rc,
        &mut sa_table,
        &HlPowerConfig::default(),
    );
    println!(
        "binding: {} FUs after {} iterations; SA table holds {} entries",
        fb.fus.len(),
        trace.len(),
        sa_table.len()
    );
    let muxes = mux_report(&g, &rb, &fb);
    println!(
        "muxes: largest {}, total length {}, muxDiff mean {:.2}",
        muxes.largest,
        muxes.length,
        muxes.muxdiff_mean()
    );

    // 4. Elaborate the datapath and check it computes the kernel.
    let dp = elaborate(&g, &sched, &rb, &fb, &DatapathConfig::with_width(8));
    let data = [3u64, 5, 7, 2, 4, 6]; // x0..x2, c0..c2
    let expected = g.evaluate(&data, 8);
    let got = execute(&dp, &dp.netlist, &data);
    assert_eq!(got, expected);
    println!(
        "datapath: {} => {:?} (reference model agrees)",
        dp.netlist.stats(),
        got
    );

    // 5. Map to 4-LUTs (the virtual Cyclone II) and report.
    let mapped = map(&dp.netlist, &MapConfig::new(4, MapObjective::GlitchSa));
    println!(
        "mapped: {} LUTs, depth {}, estimated SA {:.1} (glitch share {:.0}%)",
        mapped.stats.luts,
        mapped.stats.depth,
        mapped.stats.estimated_sa,
        100.0 * mapped.stats.estimated_glitch_sa / mapped.stats.estimated_sa
    );
    let mapped_out = execute(&dp, &mapped.netlist, &data);
    assert_eq!(mapped_out, expected);
    println!("mapped netlist still computes {mapped_out:?} — flow verified");
}
