//! Runs the flow on a user-supplied CDFG in the text format, printing the
//! schedule, binding, datapath metrics, and a VHDL snippet — the
//! "bring your own kernel" entry point.
//!
//! ```text
//! cargo run --release --example custom_benchmark [file.cdfg]
//! ```
//!
//! Without an argument, a built-in 4-tap FIR filter is used. File format
//! (see `cdfg::textio`):
//!
//! ```text
//! cdfg fir
//! input x0
//! input c0
//! op 0 mul x0 c0 -> p0
//! output p0
//! ```

use cdfg::{list_schedule, parse_cdfg, ResourceConstraint, ResourceLibrary};
use hlpower::{
    bind_hlpower, bind_registers, elaborate, execute, write_vhdl, DatapathConfig, HlPowerConfig,
    RegBindConfig, SaTable,
};

const BUILTIN: &str = "\
cdfg fir4
input x0
input x1
input x2
input x3
input c0
input c1
input c2
input c3
op 0 mul x0 c0 -> p0
op 1 mul x1 c1 -> p1
op 2 mul x2 c2 -> p2
op 3 mul x3 c3 -> p3
op 4 add p0 p1 -> s0
op 5 add p2 p3 -> s1
op 6 add s0 s1 -> y
output y
";

fn main() {
    let text = match std::env::args().nth(1) {
        Some(path) => std::fs::read_to_string(&path).unwrap_or_else(|e| {
            eprintln!("cannot read `{path}`: {e}");
            std::process::exit(2);
        }),
        None => BUILTIN.to_string(),
    };
    let (g, embedded_sched) = parse_cdfg(&text).unwrap_or_else(|e| {
        eprintln!("parse error: {e}");
        std::process::exit(2);
    });
    g.check().expect("valid CDFG");
    println!("{}", g.profile_line());

    let rc = ResourceConstraint::new(1, 2);
    let sched =
        embedded_sched.unwrap_or_else(|| list_schedule(&g, &ResourceLibrary::default(), &rc));
    println!("schedule: {} steps", sched.num_steps);
    println!("{}", cdfg::write_cdfg(&g, Some(&sched)));

    let rb = bind_registers(&g, &sched, &RegBindConfig::default());
    let mut table = SaTable::new(8, 4);
    let (fb, _) = bind_hlpower(&g, &sched, &rb, &rc, &mut table, &HlPowerConfig::default());
    for (i, fu) in fb.fus.iter().enumerate() {
        println!("fu{i} ({}): {:?}", fu.ty, fu.ops);
    }

    let dp = elaborate(&g, &sched, &rb, &fb, &DatapathConfig::with_width(8));
    println!("datapath: {}", dp.netlist.stats());

    // Verify one vector against the reference model.
    let data: Vec<u64> = (1..=g.inputs().len() as u64).collect();
    let expected = g.evaluate(&data, 8);
    assert_eq!(execute(&dp, &dp.netlist, &data), expected);
    println!("verified: inputs {data:?} -> outputs {expected:?}");

    let vhdl = write_vhdl(&dp);
    println!("\nVHDL head:");
    for line in vhdl.lines().take(12) {
        println!("  {line}");
    }
    println!("  ... ({} lines total)", vhdl.lines().count());
}
