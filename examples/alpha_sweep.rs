//! Sweeps Eq. 4's weighting coefficient `α` from 0 (pure multiplexer
//! balancing) to 1 (pure switching-activity estimation) on one benchmark
//! and reports how power, area, and mux balance respond — the paper's
//! central ablation, extended to a full sweep.
//!
//! ```text
//! cargo run --release --example alpha_sweep [benchmark] (default: wang)
//! ```

use hlpower::{paper_constraint, run_benchmark, Binder, FlowConfig};

fn main() {
    let name = std::env::args().nth(1).unwrap_or_else(|| "wang".to_string());
    let profile = cdfg::profile(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; use one of: chem dir honda mcm pr steam wang");
        std::process::exit(2);
    });
    let g = cdfg::generate(profile, profile.seed);
    let rc = paper_constraint(&name).expect("suite constraint");
    let cfg = FlowConfig { sim_cycles: 500, ..FlowConfig::default() };

    println!("alpha sweep on `{name}` (width {}, {} cycles)", cfg.width, cfg.sim_cycles);
    println!("alpha  power(mW)  LUTs  muxlen  muxDiff(mean/var)  toggle(M/s)");
    let baseline = run_benchmark(&g, &rc, Binder::Lopass, &cfg);
    println!(
        "LOPASS {:>9.2} {:>5} {:>7} {:>8.2}/{:<8.2} {:>6.1}",
        baseline.power.dynamic_power_mw,
        baseline.luts,
        baseline.mux.length,
        baseline.mux.muxdiff_mean(),
        baseline.mux.muxdiff_variance(),
        baseline.power.avg_toggle_rate_mhz
    );
    for alpha in [0.0, 0.25, 0.5, 0.75, 1.0] {
        let r = run_benchmark(&g, &rc, Binder::HlPower { alpha }, &cfg);
        println!(
            "{alpha:<6} {:>9.2} {:>5} {:>7} {:>8.2}/{:<8.2} {:>6.1}",
            r.power.dynamic_power_mw,
            r.luts,
            r.mux.length,
            r.mux.muxdiff_mean(),
            r.mux.muxdiff_variance(),
            r.power.avg_toggle_rate_mhz
        );
    }
    println!("\n(the paper evaluates alpha = 1 and alpha = 0.5; Section 6.2)");
}
