//! Sweeps Eq. 4's weighting coefficient `α` from 0 (pure multiplexer
//! balancing) to 1 (pure switching-activity estimation) on one benchmark
//! and reports how power, area, and mux balance respond — the paper's
//! central ablation, extended to a full sweep.
//!
//! The sweep runs on the staged [`Pipeline`]: the benchmark is scheduled
//! and register-bound once, every α value reuses those artifacts, and all
//! six binder jobs pool their SA estimates in one shared cache while
//! running concurrently.
//!
//! ```text
//! cargo run --release --example alpha_sweep [benchmark] (default: wang)
//! ```

use hlpower::{paper_constraint, Binder, FlowConfig, Pipeline};

fn main() {
    let name = std::env::args()
        .nth(1)
        .unwrap_or_else(|| "wang".to_string());
    let profile = cdfg::profile(&name).unwrap_or_else(|| {
        eprintln!("unknown benchmark `{name}`; use one of: chem dir honda mcm pr steam wang");
        std::process::exit(2);
    });
    let g = cdfg::generate(profile, profile.seed);
    let rc = paper_constraint(&name).expect("suite constraint");
    let cfg = FlowConfig {
        sim_cycles: 500,
        ..FlowConfig::default()
    };

    println!(
        "alpha sweep on `{name}` (width {}, {} cycles)",
        cfg.width, cfg.sim_cycles
    );
    println!("alpha  power(mW)  LUTs  muxlen  muxDiff(mean/var)  toggle(M/s)");
    let binders: Vec<Binder> = std::iter::once(Binder::Lopass)
        .chain([0.0, 0.25, 0.5, 0.75, 1.0].map(|alpha| Binder::HlPower { alpha }))
        .collect();
    let pipeline = Pipeline::new(cfg);
    let suite = vec![(g, rc)];
    let results = pipeline.run_matrix(&suite, &binders, 4);
    let labels = ["LOPASS", "0.0", "0.25", "0.5", "0.75", "1.0"];
    for (label, r) in labels.iter().zip(&results[0]) {
        println!(
            "{label:<6} {:>9.2} {:>5} {:>7} {:>8.2}/{:<8.2} {:>6.1}",
            r.power.dynamic_power_mw,
            r.luts,
            r.mux.length,
            r.mux.muxdiff_mean(),
            r.mux.muxdiff_variance(),
            r.power.avg_toggle_rate_mhz
        );
    }
    let c = pipeline.counters();
    println!(
        "\nshared artifacts: {} schedule / {} register binding for {} binder jobs",
        c.schedules, c.register_bindings, c.fu_bindings
    );
    println!("(the paper evaluates alpha = 1 and alpha = 0.5; Section 6.2)");
}
