//! Reproduces the paper's **Figure 2**: generation of the gate-level
//! partial-datapath netlist (a 2-input MUX and a 3-input MUX feeding a
//! multiplier) in `.blif` format, followed by the glitch-aware switching
//! activity estimate that becomes the edge weight's `SA` term.
//!
//! ```text
//! cargo run --release --example partial_datapath
//! ```

use cdfg::FuType;
use hlpower::partial_datapath;
use mapper::{map, MapConfig, MapObjective};
use netlist::write_blif;

fn main() {
    let width = 4; // keep the printed netlist small
    let nl = partial_datapath(FuType::Mul, 2, 3, width);
    println!("# Figure 2: mult with a 2-input and a 3-input MUX ({width}-bit)");
    println!("# {}", nl.stats());
    println!();
    let blif = write_blif(&nl);
    // Print the interface and the first gates, then elide.
    for line in blif.lines().take(30) {
        println!("{line}");
    }
    let total = blif.lines().count();
    println!("# ... ({} more lines)", total.saturating_sub(30));

    // The netlist round-trips through the BLIF parser. Output ports whose
    // name differs from their driving net gain a buffer cover in the
    // file, so the parsed-back netlist has one extra node per rename.
    let back = netlist::parse_blif(&blif)
        .expect("writer output parses")
        .flatten(None, &[])
        .expect("writer output links");
    let renamed_outputs = nl
        .outputs()
        .iter()
        .filter(|(port, id)| &nl.node(*id).name != port)
        .count();
    assert_eq!(back.stats().logic, nl.stats().logic + renamed_outputs);
    assert_eq!(back.inputs().len(), nl.inputs().len());

    // Map to 4-LUTs and estimate the glitch-aware SA (the value stored in
    // the precalculated table for key (mult, 2, 3)).
    let mapped = map(&nl, &MapConfig::new(4, MapObjective::GlitchSa));
    println!();
    println!(
        "mapped to {} 4-LUTs, depth {}; estimated SA = {:.2} (glitches {:.2})",
        mapped.stats.luts,
        mapped.stats.depth,
        mapped.stats.estimated_sa,
        mapped.stats.estimated_glitch_sa,
    );
    println!("this SA value is what Eq. 4 uses for a merge that needs (2,3) input muxes");
}
