//! Repo maintenance tasks, run as `cargo run -p xtask -- <task>`.
//!
//! The only task today is `lint`: a determinism lint over the modules
//! whose output is covered by a byte-identical guarantee (the binary and
//! text artifact codecs, the content fingerprint, and the wire protocol).
//! The warm-cache and daemon CI smokes diff *bytes*, so any source of
//! run-to-run nondeterminism in these files — hash-map iteration order,
//! wall-clock values, panicking parses on attacker-controlled input — is
//! a bug even when every unit test passes. The lint is deliberately
//! line-based and dependency-free: it has to run on a bare toolchain and
//! its false-positive escape hatch is an explicit, greppable waiver
//! comment (`lint:allow(<rule>)`), not a config file.
//!
//! Rules:
//!
//! * `no-hash-container` — codec and fingerprint modules must not
//!   mention `HashMap`/`HashSet` at all. Iteration order would leak
//!   straight into serialized bytes; use `Vec` or `BTreeMap`.
//! * `wall-clock` — codec and fingerprint modules must not read
//!   `SystemTime::now`/`Instant::now`. Timestamps in serialized data
//!   break the byte-identical warm-run contract.
//! * `map-iter` — wire/store modules may own hash maps but must not
//!   iterate them (`.values()`, `.keys()`, `.drain(`) without a waiver
//!   stating why the fold is order-insensitive.
//! * `wire-unwrap` — modules that parse bytes from the wire or the
//!   store must not `.unwrap()`: malformed input has to surface as an
//!   error, never a panic.
//! * `trunc-cast` — codec and wire modules must not use bare
//!   `as usize` casts. A `u64` length narrowed on a 32-bit target
//!   silently truncates and desynchronizes the cursor; use
//!   `usize::try_from` or waive with a proof the value is in range.
//! * `tests-last` — the `#[cfg(test)]` module must be the last item in
//!   a guarded file. Everything after the first test-module guard is
//!   skipped by every rule above, so a code line trailing the module's
//!   closing brace would be invisible to the lint; this rule
//!   brace-counts to the module's close and flags whatever follows.
//!
//! Lines inside `#[cfg(test)]` regions and comment lines are skipped
//! (test modules are last-in-file by repo convention, which the lint
//! verifies is still true before relying on it).

use std::fmt;
use std::path::{Path, PathBuf};
use std::process::ExitCode;

/// One lint rule: a name (used in `lint:allow(<name>)` waivers), the
/// substrings that trigger it, and the message shown on a hit.
struct Rule {
    name: &'static str,
    needles: &'static [&'static str],
    message: &'static str,
}

const NO_HASH_CONTAINER: Rule = Rule {
    name: "no-hash-container",
    needles: &["HashMap", "HashSet"],
    message: "codec/fingerprint modules must not use hash containers \
              (iteration order leaks into serialized bytes); use Vec or BTreeMap",
};

const WALL_CLOCK: Rule = Rule {
    name: "wall-clock",
    needles: &["SystemTime::now", "Instant::now"],
    message: "codec/fingerprint modules must not read the wall clock \
              (timestamps break the byte-identical warm-run contract)",
};

const MAP_ITER: Rule = Rule {
    name: "map-iter",
    needles: &[".values()", ".keys()", ".drain("],
    message: "map iteration in a wire/store module; if the fold is \
              order-insensitive, say why in a `lint:allow(map-iter)` waiver",
};

const WIRE_UNWRAP: Rule = Rule {
    name: "wire-unwrap",
    needles: &[".unwrap()"],
    message: "no .unwrap() on wire/store parse paths; malformed input \
              must surface as an error, never a panic",
};

const TRUNC_CAST: Rule = Rule {
    name: "trunc-cast",
    needles: &["as usize"],
    message: "bare `as usize` in a codec/wire module can silently \
              truncate; use usize::try_from or waive with a \
              `lint:allow(trunc-cast)` stating why the value is in range",
};

/// Which rules each guarded file is held to.
const TARGETS: &[(&str, &[&Rule])] = &[
    // Codec + fingerprint modules: everything they emit is fingerprinted
    // or diffed byte-for-byte in CI.
    (
        "crates/netlist/src/binio.rs",
        &[&NO_HASH_CONTAINER, &WALL_CLOCK, &WIRE_UNWRAP, &TRUNC_CAST],
    ),
    (
        "crates/netlist/src/textio.rs",
        &[&NO_HASH_CONTAINER, &WALL_CLOCK, &WIRE_UNWRAP, &TRUNC_CAST],
    ),
    (
        "crates/core/src/fingerprint.rs",
        &[&NO_HASH_CONTAINER, &WALL_CLOCK, &WIRE_UNWRAP, &TRUNC_CAST],
    ),
    // Wire/store modules: they may use hash maps internally but must not
    // iterate them unexplained, and must never panic on foreign bytes.
    (
        "crates/core/src/api/mod.rs",
        &[&MAP_ITER, &WIRE_UNWRAP, &TRUNC_CAST],
    ),
    (
        "crates/core/src/api/proto.rs",
        &[&MAP_ITER, &WIRE_UNWRAP, &TRUNC_CAST],
    ),
    (
        "crates/core/src/api/service.rs",
        &[&MAP_ITER, &WIRE_UNWRAP, &TRUNC_CAST],
    ),
    (
        "crates/core/src/api/server.rs",
        &[&MAP_ITER, &WIRE_UNWRAP, &TRUNC_CAST],
    ),
    (
        "crates/core/src/store.rs",
        &[&MAP_ITER, &WIRE_UNWRAP, &TRUNC_CAST],
    ),
    // The audit-watermark index feeds fsck's skip decisions; a panic or
    // nondeterministic fold here would silently un-audit slots.
    (
        "crates/core/src/audit.rs",
        &[&MAP_ITER, &WIRE_UNWRAP, &TRUNC_CAST],
    ),
];

/// A single lint hit, printed `path:line: [rule] message`.
struct Finding {
    path: String,
    line: usize,
    rule: &'static str,
    message: &'static str,
}

impl fmt::Display for Finding {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "{}:{}: [{}] {}",
            self.path, self.line, self.rule, self.message
        )
    }
}

/// The workspace root: xtask lives at `<root>/xtask`, so one hop up
/// from this crate's manifest directory.
fn repo_root() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR"))
        .parent()
        .expect("xtask sits one level below the workspace root")
        .to_path_buf()
}

/// Runs every rule over one file. `rel` is the repo-relative path used
/// both for reading and for reporting.
fn lint_file(root: &Path, rel: &str, rules: &[&Rule], findings: &mut Vec<Finding>) {
    let text = match std::fs::read_to_string(root.join(rel)) {
        Ok(t) => t,
        Err(e) => {
            findings.push(Finding {
                path: rel.to_string(),
                line: 0,
                rule: "unreadable",
                message: Box::leak(format!("cannot read guarded file: {e}").into_boxed_str()),
            });
            return;
        }
    };

    // Test modules are last-in-file by repo convention; verify that the
    // first `#[cfg(test)]` really is a trailing `mod tests` guard before
    // skipping everything after it, so the convention can't silently rot
    // into a hole in the lint.
    let lines: Vec<&str> = text.lines().collect();
    let test_start = lines
        .iter()
        .position(|l| l.trim_start().starts_with("#[cfg(test)]"));
    if let Some(at) = test_start {
        let guards_mod = lines[at + 1..]
            .iter()
            .map(|l| l.trim_start())
            .find(|l| !l.is_empty() && !l.starts_with("//") && !l.starts_with("#["))
            .is_some_and(|l| l.split_whitespace().any(|w| w == "mod"));
        if !guards_mod {
            findings.push(Finding {
                path: rel.to_string(),
                line: at + 1,
                rule: "test-layout",
                message: "first #[cfg(test)] does not guard a trailing test module; \
                          the lint's skip heuristic assumes tests come last",
            });
        } else {
            // The tail must actually be all-test: every rule above skips
            // everything from the guard down, so a plain code line after
            // a test module's closing brace would be invisible to the
            // lint. Brace-count each `#[cfg(test)]`-guarded item to its
            // close (comment lines excluded; string-literal braces come
            // in balanced pairs in practice) and flag anything between
            // one close and the next guard.
            let mut idx = at;
            'tail: while idx < lines.len() {
                // `idx` is at a `#[cfg(test)]` guard; skip its item.
                let mut depth = 0usize;
                let mut opened = false;
                loop {
                    let Some(raw) = lines.get(idx) else {
                        break 'tail; // unbalanced braces: give up quietly
                    };
                    if !raw.trim_start().starts_with("//") {
                        for c in raw.chars() {
                            match c {
                                '{' => {
                                    depth += 1;
                                    opened = true;
                                }
                                '}' => depth = depth.saturating_sub(1),
                                _ => {}
                            }
                        }
                    }
                    idx += 1;
                    if opened && depth == 0 {
                        break;
                    }
                }
                // Flag code until the next guarded item (or EOF).
                while idx < lines.len() {
                    let line = lines[idx].trim_start();
                    if line.starts_with("#[cfg(test)]") {
                        continue 'tail;
                    }
                    if !(line.is_empty()
                        || line.starts_with("//")
                        || line.contains("lint:allow(tests-last)"))
                    {
                        findings.push(Finding {
                            path: rel.to_string(),
                            line: idx + 1,
                            rule: "tests-last",
                            message: "code after a #[cfg(test)] module is invisible \
                                      to every other rule; keep tests last in \
                                      guarded files",
                        });
                    }
                    idx += 1;
                }
            }
        }
    }
    let scan_until = test_start.unwrap_or(lines.len());

    for (idx, raw) in lines[..scan_until].iter().enumerate() {
        let line = raw.trim_start();
        // Comment lines (`//`, `///`, `//!`) are documentation, not code.
        if line.starts_with("//") {
            continue;
        }
        for rule in rules {
            if !rule.needles.iter().any(|n| line.contains(n)) {
                continue;
            }
            // A waiver may sit at the end of the offending line or on a
            // comment-only line directly above it (a trailing waiver on
            // the previous *code* line does not leak downward).
            let waiver = format!("lint:allow({})", rule.name);
            let above = idx > 0 && {
                let prev = lines[idx - 1].trim_start();
                prev.starts_with("//") && prev.contains(&waiver)
            };
            if line.contains(&waiver) || above {
                continue;
            }
            findings.push(Finding {
                path: rel.to_string(),
                line: idx + 1,
                rule: rule.name,
                message: rule.message,
            });
        }
    }
}

fn lint() -> ExitCode {
    let root = repo_root();
    let mut findings = Vec::new();
    for (rel, rules) in TARGETS {
        lint_file(&root, rel, rules, &mut findings);
    }
    if findings.is_empty() {
        println!(
            "lint ok: {} guarded file(s), no determinism hazards",
            TARGETS.len()
        );
        ExitCode::SUCCESS
    } else {
        for f in &findings {
            println!("{f}");
        }
        eprintln!("lint: {} finding(s)", findings.len());
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    match args.first().map(String::as_str) {
        Some("lint") => lint(),
        _ => {
            eprintln!("usage: cargo run -p xtask -- lint");
            eprintln!();
            eprintln!("tasks:");
            eprintln!("  lint    determinism lint over codec/fingerprint/wire modules");
            ExitCode::from(2)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn run(rel: &str, rules: &[&Rule]) -> Vec<String> {
        let mut findings = Vec::new();
        lint_file(&repo_root(), rel, rules, &mut findings);
        findings.iter().map(|f| f.to_string()).collect()
    }

    #[test]
    fn guarded_tree_is_clean() {
        for (rel, rules) in TARGETS {
            let hits = run(rel, rules);
            assert!(hits.is_empty(), "{rel} has lint findings: {hits:?}");
        }
    }

    #[test]
    fn rules_fire_on_seeded_violations() {
        // Drive the scanner over a synthetic file via a temp dir so the
        // needle/waiver/test-skip logic is exercised without touching
        // the real tree.
        let dir = std::env::temp_dir().join(format!("xtask-lint-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("seeded.rs");
        std::fs::write(
            &path,
            concat!(
                "// comment mentioning HashMap is fine\n",
                "use std::collections::HashMap;\n",
                "fn f(m: &HashMap<u32, u32>) -> u32 {\n",
                "    let t = SystemTime::now();\n",
                "    let ok: u32 = m.values().sum(); // lint:allow(map-iter): sum is order-insensitive\n",
                "    let bad: u32 = m.keys().sum();\n",
                "    ok + bad + t.elapsed().unwrap().as_secs() as u32\n",
                "        + len as usize as u32\n",
                "        + checked as usize as u32 // lint:allow(trunc-cast): provably < 16\n",
                "}\n",
                "#[cfg(test)]\n",
                "mod tests {\n",
                "    fn in_tests() { None::<u32>.unwrap(); }\n",
                "}\n",
            ),
        )
        .unwrap();

        let mut findings = Vec::new();
        let rules: &[&Rule] = &[
            &NO_HASH_CONTAINER,
            &WALL_CLOCK,
            &MAP_ITER,
            &WIRE_UNWRAP,
            &TRUNC_CAST,
        ];
        lint_file(Path::new("/"), path.to_str().unwrap(), rules, &mut findings);
        let hits: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        std::fs::remove_dir_all(&dir).ok();

        // Two HashMap mentions, one wall-clock read, one unwaived map
        // iteration, one unwrap, one unwaived truncating cast — and
        // nothing from the comment, the waived lines, or the test module.
        assert_eq!(hits.len(), 6, "{hits:?}");
        assert!(
            hits.iter()
                .filter(|h| h.contains("no-hash-container"))
                .count()
                == 2
        );
        assert!(hits.iter().any(|h| h.contains(":4: [wall-clock]")));
        assert!(hits.iter().any(|h| h.contains(":6: [map-iter]")));
        assert!(hits.iter().any(|h| h.contains(":7: [wire-unwrap]")));
        assert!(hits.iter().any(|h| h.contains(":8: [trunc-cast]")));
    }

    #[test]
    fn code_after_the_test_module_is_flagged() {
        let dir = std::env::temp_dir().join(format!("xtask-lint-tl-{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("trailing.rs");
        std::fs::write(
            &path,
            concat!(
                "fn shipped() {}\n",
                "#[cfg(test)]\n",
                "mod tests {\n",
                "    // a comment with a stray { does not derail the count\n",
                "    fn t() { let _ = format!(\"{}\", 1); }\n",
                "}\n",
                "\n",
                "// trailing comments are fine\n",
                "fn smuggled() { None::<u32>.unwrap(); }\n",
                "fn waived() {} // lint:allow(tests-last): generated re-export\n",
            ),
        )
        .unwrap();

        let mut findings = Vec::new();
        lint_file(
            Path::new("/"),
            path.to_str().unwrap(),
            &[&WIRE_UNWRAP],
            &mut findings,
        );
        let hits: Vec<String> = findings.iter().map(|f| f.to_string()).collect();
        std::fs::remove_dir_all(&dir).ok();

        // Exactly one finding: the unwaived code line after the test
        // module — note its .unwrap() itself dodged wire-unwrap, which
        // is precisely why tests-last exists.
        assert_eq!(hits.len(), 1, "{hits:?}");
        assert!(hits[0].contains(":9: [tests-last]"), "{hits:?}");
    }
}
