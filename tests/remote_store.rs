//! Acceptance tests for the remote artifact-store backend and the
//! daemon's operability hardening:
//!
//! * artifact `get`/`put`/`stat` verbs round-trip through a daemon and
//!   land in its local store directory, byte for byte;
//! * a warm run against `--store remote:ADDR` executes **zero**
//!   schedule/map/simulate stages and reproduces a local `--store` run
//!   byte-identically;
//! * two concurrent clients share one daemon's hot store;
//! * a daemon stopped and restarted mid-matrix resumes from the
//!   persisted store (clients re-dial transparently);
//! * oversize request lines are answered with an `error` line and the
//!   connection stays protocol-aligned (no unbounded buffering);
//! * connections beyond `--max-clients` are rejected politely;
//! * binding over a live daemon's socket is refused; stale socket
//!   files are cleaned up;
//! * `store fsck` audits the daemon's slots in place — only verdict
//!   lines cross the wire, repairs quarantine daemon-side, and warm
//!   watermarks short-circuit the re-audit;
//! * a corrupt `put-sa` body is refused with a protocol-clean error
//!   and never poisons the shared shard;
//! * fsck runs concurrently with a live put stream without tripping
//!   on half-arrived state.

#![cfg(unix)]

use hlpower::api::{self, Endpoint, JobReport, JobRequest, Server, Service};
use hlpower::{
    paper_constraint, ArtifactStore, Binder, FlowConfig, FsckOptions, Pipeline, RepairMode, SaMode,
    SaTable, ServeOptions,
};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "hlpower-remote-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A daemon under test: serving thread + the endpoint to reach it.
struct Daemon {
    endpoint: Endpoint,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

impl Daemon {
    fn start(socket: &std::path::Path, store_dir: &std::path::Path, opts: ServeOptions) -> Daemon {
        let service =
            Arc::new(Service::new().with_store(Arc::new(ArtifactStore::open(store_dir).unwrap())));
        let server = Server::bind(&Endpoint::Unix(socket.to_path_buf())).unwrap();
        let handle = std::thread::spawn(move || server.serve_with(service, opts));
        Daemon {
            endpoint: Endpoint::Unix(socket.to_path_buf()),
            handle,
        }
    }

    /// Graceful stop: `control stop`, then join the serving thread and
    /// assert it exited cleanly and unlinked its socket.
    fn stop(self) {
        api::stop_daemon(&self.endpoint).unwrap();
        self.handle
            .join()
            .expect("serve thread must not panic")
            .expect("graceful stop exits Ok");
        if let Endpoint::Unix(path) = &self.endpoint {
            assert!(!path.exists(), "graceful stop unlinks the socket file");
        }
    }
}

fn fast_suite(names: &[&str]) -> Vec<(cdfg::Cdfg, cdfg::ResourceConstraint)> {
    names
        .iter()
        .map(|n| {
            let p = cdfg::profile(n).unwrap();
            (cdfg::generate(p, p.seed), paper_constraint(n).unwrap())
        })
        .collect()
}

fn fast_request(name: &str) -> JobRequest {
    JobRequest::suite(name).width(4).sa_width(4).cycles(100)
}

/// The deterministic payload of a report — everything except the
/// per-request stats attribution.
fn result_text(report: &JobReport) -> String {
    JobReport {
        result: report.result.clone(),
        stats: Default::default(),
    }
    .to_text()
}

#[test]
fn remote_backend_round_trips_artifacts_through_the_daemon() {
    let store_dir = temp_path("rt-store");
    let socket = temp_path("rt-sock");
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());

    let remote = ArtifactStore::connect(&daemon.endpoint).unwrap();
    assert_eq!(remote.describe(), format!("remote:{}", socket.display()));

    // Content-addressed artifacts: put remotely, visible locally (and
    // back), byte for byte — the backend moves bytes verbatim, but the
    // daemon audits them first, so the name must be a real fingerprint
    // and the body a valid artifact of its kind.
    let name = "feedc0defeedc0defeedc0defeedc0de";
    let body = b"# hlpower sim v1\ncycles 100 total 640 functional 600 glitch 40 nodes 9\n";
    assert!(!remote.raw_stat("sims", name));
    remote.raw_put("sims", name, body);
    assert!(remote.raw_stat("sims", name));
    assert_eq!(remote.raw_get("sims", name).as_deref(), Some(body.as_ref()));
    let local = ArtifactStore::open(&store_dir).unwrap();
    assert_eq!(
        local.raw_get("sims", name).as_deref(),
        remote.raw_get("sims", name).as_deref(),
        "remote put lands in the daemon's local store"
    );
    assert_eq!(remote.raw_list("sims").unwrap(), vec![name]);

    // A body that fails the static audit is refused server-side and
    // never lands: garbage under a fingerprint name reads back absent.
    remote.raw_put(
        "sims",
        "deadbeefdeadbeefdeadbeefdeadbeef",
        b"not a summary\n",
    );
    assert!(
        !remote.raw_stat("sims", "deadbeefdeadbeefdeadbeefdeadbeef"),
        "daemon must reject a semantically invalid store put"
    );

    // SA shards merge server-side with absorb semantics: existing
    // entries win and conflicts are reported over the wire.
    let mut a = SaTable::new(4, 4);
    a.insert(cdfg::FuType::AddSub, 1, 1, 2.0);
    let s = remote.merge_sa_table(&a);
    assert_eq!((s.inserted, s.conflicting), (1, 0));
    let mut b = SaTable::new(4, 4);
    b.insert(cdfg::FuType::AddSub, 1, 1, 9.0); // conflicts
    b.insert(cdfg::FuType::Mul, 2, 2, 5.0); // new
    let s = remote.merge_sa_table(&b);
    assert_eq!((s.inserted, s.matched, s.conflicting), (1, 0, 1));
    let shard = remote.load_sa_table(SaMode::Precalculated, 4, 4).unwrap();
    assert_eq!(shard.len(), 2);
    assert_eq!(shard.lookup(cdfg::FuType::AddSub, 1, 1), Some(2.0));

    // Wire-invalid names are refused server-side, read as misses.
    assert!(remote.raw_get("sims", "../escape").is_none());
    assert!(!remote.raw_stat("nope-kind", "feedc0de"));

    daemon.stop();
}

#[test]
fn warm_remote_run_is_byte_identical_to_local_with_zero_executions() {
    let store_dir = temp_path("warm-store");
    let socket = temp_path("warm-sock");
    let reqs: Vec<JobRequest> = ["wang", "pr"].iter().map(|n| fast_request(n)).collect();

    // Reference: a local --store run that warms the directory.
    let local_service =
        Service::new().with_store(Arc::new(ArtifactStore::open(&store_dir).unwrap()));
    let local: Vec<JobReport> = reqs
        .iter()
        .map(|r| local_service.execute(r).unwrap())
        .collect();

    // The same requests against `remote:` of a daemon serving that
    // directory: everything is served over the wire, nothing recomputes.
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());
    let remote_store = Arc::new(ArtifactStore::connect(&daemon.endpoint).unwrap());
    let remote_service = Service::new().with_store(remote_store.clone());
    for (req, reference) in reqs.iter().zip(&local) {
        let report = remote_service.execute(req).unwrap();
        assert_eq!(
            result_text(&report),
            result_text(reference),
            "remote-store report must be byte-identical to the local-store report"
        );
        assert_eq!(report.stats.stages.schedules, 0);
        assert_eq!(report.stats.stages.register_bindings, 0);
        assert_eq!(report.stats.stages.elaborations, 0);
        assert_eq!(report.stats.stages.mappings, 0);
        assert_eq!(report.stats.stages.simulations, 0);
    }
    let counts = remote_store.counters();
    assert!(counts.hits() > 0, "warm artifacts served over the wire");
    assert_eq!(counts.misses(), 0, "{counts:?}");
    daemon.stop();
}

#[test]
fn two_concurrent_clients_share_one_daemon_store() {
    let store_dir = temp_path("conc-store");
    let socket = temp_path("conc-sock");
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());
    let endpoint = daemon.endpoint.clone();

    let cfg = FlowConfig::fast();
    let binders = [Binder::HlPower { alpha: 0.5 }];
    let reference =
        Pipeline::new(cfg.clone()).run_matrix(&fast_suite(&["wang", "pr"]), &binders, 2);

    // Two workers, each its own connection pool, hammering one daemon.
    let workers: Vec<_> = (0..2)
        .map(|_| {
            let endpoint = endpoint.clone();
            let cfg = cfg.clone();
            std::thread::spawn(move || {
                let store = Arc::new(ArtifactStore::connect(&endpoint).unwrap());
                Pipeline::with_store(cfg, store).run_matrix(
                    &fast_suite(&["wang", "pr"]),
                    &binders,
                    2,
                )
            })
        })
        .collect();
    for worker in workers {
        let results = worker.join().unwrap();
        for (rows, ref_rows) in results.iter().zip(&reference) {
            for (r, reference) in rows.iter().zip(ref_rows) {
                assert_eq!(r.luts, reference.luts);
                assert_eq!(r.power.total_transitions, reference.power.total_transitions);
                assert_eq!(
                    r.power.dynamic_power_mw.to_bits(),
                    reference.power.dynamic_power_mw.to_bits()
                );
            }
        }
    }

    // The daemon's store is now warm for any later client.
    let late = Pipeline::with_store(cfg, Arc::new(ArtifactStore::connect(&endpoint).unwrap()));
    late.run_matrix(&fast_suite(&["wang", "pr"]), &binders, 1);
    let stats = late.stats();
    assert_eq!(stats.stages.mappings, 0, "warmed by the concurrent clients");
    assert_eq!(stats.stages.simulations, 0);
    daemon.stop();
}

#[test]
fn daemon_restart_mid_matrix_resumes_from_the_persisted_store() {
    let store_dir = temp_path("restart-store");
    let socket = temp_path("restart-sock");
    let cfg = FlowConfig::fast();
    let binder = Binder::HlPower { alpha: 0.5 };
    let suite = fast_suite(&["wang", "pr"]);
    let reference = Pipeline::new(cfg.clone()).run_matrix(&suite, &[binder], 1);

    // Phase 1: a worker completes half the matrix, then the daemon goes
    // away (gracefully here; the store is written atomically either way).
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());
    let endpoint = daemon.endpoint.clone();
    let survivor = Arc::new(ArtifactStore::connect(&endpoint).unwrap());
    Pipeline::with_store(cfg.clone(), survivor.clone()).run(&suite[0].0, &suite[0].1, binder);
    daemon.stop();

    // Phase 2: restart on the same socket and store; a fresh worker runs
    // the whole matrix and recomputes only the second half.
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());
    let resumed = Pipeline::with_store(cfg, Arc::new(ArtifactStore::connect(&endpoint).unwrap()));
    let results = resumed.run_matrix(&suite, &[binder], 1);
    let stats = resumed.stats();
    assert_eq!(stats.stages.mappings, 1, "only the unfinished job maps");
    assert_eq!(stats.stages.simulations, 1);
    assert_eq!(stats.store.netlist_hits, 1, "first job served from disk");
    for (rows, ref_rows) in results.iter().zip(&reference) {
        for (r, reference) in rows.iter().zip(ref_rows) {
            assert_eq!(r.luts, reference.luts);
            assert_eq!(
                r.power.dynamic_power_mw.to_bits(),
                reference.power.dynamic_power_mw.to_bits()
            );
        }
    }

    // The phase-1 handle's pooled connection died with the old daemon;
    // its next operation re-dials transparently.
    assert!(survivor.raw_stat("prepared", &resumed_prepared_name(&suite[0], &resumed)));
    daemon.stop();
}

/// The prepared-artifact name of a suite entry, via the pipeline's own
/// fingerprinting (so the restart test asserts against the real key).
fn resumed_prepared_name(
    entry: &(cdfg::Cdfg, cdfg::ResourceConstraint),
    pipeline: &Pipeline,
) -> String {
    pipeline.prepare(&entry.0, &entry.1).fingerprint.to_string()
}

#[test]
fn oversize_request_lines_get_an_error_and_the_connection_survives() {
    let store_dir = temp_path("cap-store");
    let socket = temp_path("cap-sock");
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());

    let stream = UnixStream::connect(&socket).unwrap();
    let mut writer = &stream;
    // 2 MiB of garbage on one line: twice the cap. The daemon must
    // answer with an error line without buffering the payload, and the
    // connection must stay protocol-aligned for the next request.
    let garbage = vec![b'x'; 2 << 20];
    writer.write_all(&garbage).unwrap();
    writer.write_all(b"\n").unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("error ") && line.contains("exceeds"),
        "oversize line must be refused, got `{line}`"
    );

    // Same connection, a well-formed store request: still served.
    writer.write_all(b"store stat prepared 0\n").unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "absent");

    // And a well-formed job request after that: a full report block.
    writer
        .write_all(format!("{}\n", fast_request("wang").to_line()).as_bytes())
        .unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "# hlpower report v1");
    daemon.stop();
}

#[test]
fn connections_beyond_the_limit_park_with_busy_then_serve_after_drain() {
    let store_dir = temp_path("limit-store");
    let socket = temp_path("limit-sock");
    let daemon = Daemon::start(
        &socket,
        &store_dir,
        ServeOptions {
            max_clients: 1,
            queue_depth: 4,
            ..ServeOptions::default()
        },
    );

    // First client occupies the one slot (a completed exchange proves
    // its handler is registered).
    let first = UnixStream::connect(&socket).unwrap();
    {
        let mut writer = &first;
        writer.write_all(b"store stat prepared 0\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        BufReader::new(&first).read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "absent");
    }

    // Second client is parked, not rejected: it hears one `busy` line,
    // and its already-sent request is buffered for promotion.
    let second = UnixStream::connect(&socket).unwrap();
    {
        let mut writer = &second;
        writer.write_all(b"store stat prepared 0\n").unwrap();
        writer.flush().unwrap();
    }
    let mut reader = BufReader::new(&second);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line == "busy" || line.starts_with("busy "),
        "parked client must hear a busy line, got `{line}`"
    );

    // Once the first client hangs up, the parked one is promoted and
    // its buffered request is served — no retry, same connection.
    drop(first);
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(
        line.trim_end(),
        "absent",
        "promoted client must be served its buffered request"
    );

    // And a saturated daemon can still be stopped gracefully: the
    // `control stop` connection is over the limit but parked control
    // lines are answered in place.
    daemon.stop();
}

#[test]
fn a_zero_depth_admission_queue_rejects_overflow_with_an_error_line() {
    let store_dir = temp_path("reject-store");
    let socket = temp_path("reject-sock");
    let daemon = Daemon::start(
        &socket,
        &store_dir,
        ServeOptions {
            max_clients: 1,
            queue_depth: 0,
            ..ServeOptions::default()
        },
    );

    // Occupy the only slot.
    let first = UnixStream::connect(&socket).unwrap();
    {
        let mut writer = &first;
        writer.write_all(b"store stat prepared 0\n").unwrap();
        writer.flush().unwrap();
        let mut line = String::new();
        BufReader::new(&first).read_line(&mut line).unwrap();
        assert_eq!(line.trim_end(), "absent");
    }

    // With no queue, an overflow connection asking for normal service
    // is turned away with a protocol-clean error line (only `control`
    // lines get through). The message is wire-escaped, so match a
    // single word.
    let second = UnixStream::connect(&socket).unwrap();
    {
        let mut writer = &second;
        writer.write_all(b"store stat prepared 0\n").unwrap();
        writer.flush().unwrap();
    }
    let mut line = String::new();
    BufReader::new(&second).read_line(&mut line).unwrap();
    assert!(
        line.starts_with("error ") && line.contains("limit"),
        "got `{line}`"
    );
    drop(first);
    daemon.stop();
}

#[test]
fn binding_over_a_live_daemon_is_refused_and_stale_sockets_are_cleaned() {
    let store_dir = temp_path("bind-store");
    let socket = temp_path("bind-sock");
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());

    // A second daemon on the same socket must refuse to start: silently
    // unlinking the live socket would orphan the first daemon.
    let err = match Server::bind(&Endpoint::Unix(socket.clone())) {
        Ok(_) => panic!("binding over a live daemon must fail"),
        Err(e) => e,
    };
    assert_eq!(err.kind(), std::io::ErrorKind::AddrInUse, "{err}");
    assert!(err.to_string().contains("live daemon"), "{err}");
    // ... and the refusal must not have stolen the socket file.
    assert!(socket.exists());
    daemon.stop();

    // A stale socket file (nothing accepting behind it) is cleaned up.
    {
        let _leftover = std::os::unix::net::UnixListener::bind(&socket).unwrap();
        // Listener dropped here; the file stays behind, dead.
    }
    assert!(socket.exists(), "dropping a listener leaves the file");
    let server = Server::bind(&Endpoint::Unix(socket.clone())).unwrap();
    drop(server);
    let _ = std::fs::remove_file(&socket);

    // A regular file at the socket path is never deleted: a mistyped
    // `--socket` must not destroy user data.
    let not_a_socket = temp_path("not-a-socket");
    std::fs::write(&not_a_socket, "precious bytes").unwrap();
    let err = match Server::bind(&Endpoint::Unix(not_a_socket.clone())) {
        Ok(_) => panic!("binding over a regular file must fail"),
        Err(e) => e,
    };
    assert!(err.to_string().contains("not a socket"), "{err}");
    assert_eq!(
        std::fs::read_to_string(&not_a_socket).unwrap(),
        "precious bytes",
        "the file must survive untouched"
    );
    let _ = std::fs::remove_file(&not_a_socket);
    let _ = std::fs::remove_dir_all(&store_dir);
}

#[test]
fn remote_spec_without_a_daemon_fails_fast() {
    let socket = temp_path("dead-sock");
    let spec = format!("remote:{}", socket.display());
    let err = ArtifactStore::open_spec(&spec).unwrap_err();
    // Must be a connect error, not a silently-cold store.
    assert!(
        err.kind() == std::io::ErrorKind::NotFound
            || err.kind() == std::io::ErrorKind::ConnectionRefused,
        "{err}"
    );

    // A daemon without a store refuses the protocol ping, so `--store
    // remote:` against it fails fast too instead of quietly missing on
    // every lookup.
    let bare_socket = temp_path("bare-sock");
    let server = Server::bind(&Endpoint::Unix(bare_socket.clone())).unwrap();
    let service = Arc::new(Service::new()); // no store attached
    let handle = std::thread::spawn(move || server.serve_with(service, ServeOptions::default()));
    let err = ArtifactStore::connect(&Endpoint::Unix(bare_socket.clone())).unwrap_err();
    assert!(err.to_string().contains("no store"), "{err}");
    api::stop_daemon(&Endpoint::Unix(bare_socket)).unwrap();
    handle.join().unwrap().unwrap();
}

/// A sim summary that passes the static audit under any fingerprint name.
const VALID_SIM: &[u8] =
    b"# hlpower sim v1\ncycles 100 total 640 functional 600 glitch 40 nodes 9\n";

/// The on-disk slot file for `name` under the daemon's store directory
/// (extension is sniffed at put time, so locate by prefix).
fn slot_file(store_dir: &std::path::Path, kind: &str, name: &str) -> PathBuf {
    let dir = store_dir.join(kind);
    let mut hits: Vec<PathBuf> = std::fs::read_dir(&dir)
        .unwrap()
        .map(|e| e.unwrap().path())
        .filter(|p| {
            let f = p.file_name().unwrap().to_string_lossy().into_owned();
            f.starts_with(name) && !f.ends_with(".bad")
        })
        .collect();
    assert_eq!(hits.len(), 1, "exactly one live slot for {kind}/{name}");
    hits.pop().unwrap()
}

#[test]
fn remote_fsck_audits_daemon_side_and_streams_only_verdicts() {
    let store_dir = temp_path("fsck-store");
    let socket = temp_path("fsck-sock");
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());
    let remote = ArtifactStore::connect(&daemon.endpoint).unwrap();

    // Two valid sims over the wire (the daemon audits-on-put, so both land).
    let good = "feedc0defeedc0defeedc0defeedc0de";
    let victim = "0123456789abcdef0123456789abcdef";
    remote.raw_put("sims", good, VALID_SIM);
    remote.raw_put("sims", victim, VALID_SIM);

    // Cold fsck: the daemon audits its own slots; this side only ever
    // sees counters and verdicts.
    let off = FsckOptions {
        repair: RepairMode::Off,
        full: false,
    };
    let cold = remote.fsck_with(&off).unwrap();
    assert!(cold.issues.is_empty(), "{cold}");
    assert_eq!(cold.scanned, 2);
    assert_eq!(cold.audited(), 2, "cold pass audits everything");

    // Warm fsck: watermarks written daemon-side short-circuit the audit.
    let warm = remote.fsck_with(&off).unwrap();
    assert_eq!(warm.skipped_unchanged, 2, "{warm}");
    assert_eq!(warm.audited(), 0, "warm pass re-audits nothing");

    // Corrupt one slot behind the daemon's back, then ask the daemon to
    // repair remotely: the verdict crosses the wire, the quarantine
    // happens in the DAEMON's directory.
    std::fs::write(slot_file(&store_dir, "sims", victim), b"rotted bytes\n").unwrap();
    let repaired = remote
        .fsck_with(&FsckOptions {
            repair: RepairMode::Quarantine,
            full: false,
        })
        .unwrap();
    assert_eq!(repaired.issues.len(), 1, "{repaired}");
    assert_eq!(repaired.issues[0].kind, "sims");
    assert_eq!(repaired.issues[0].name, victim);
    assert!(repaired.issues[0].quarantined);
    assert!(!repaired.issues[0].fixed);
    assert!(
        !repaired.issues[0].problem.is_empty(),
        "the defect description survives wire escaping"
    );
    assert_eq!(repaired.quarantined, 1);
    let bad = store_dir.join("sims").join(format!("{victim}.txt.bad"));
    assert!(bad.exists(), "quarantine lands in the daemon's store dir");
    assert!(
        !remote.raw_stat("sims", victim),
        "bad slot no longer served"
    );
    assert!(remote.raw_stat("sims", good), "healthy slot untouched");

    // Raw wire transcript: a full fsck streams verdict lines only —
    // never a `data N` frame, i.e. no artifact body ever crosses.
    let stream = UnixStream::connect(&socket).unwrap();
    let mut writer = &stream;
    writer.write_all(b"store fsck off full\n").unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    loop {
        line.clear();
        reader.read_line(&mut line).unwrap();
        assert!(
            line.starts_with("bad ") || line.starts_with("done "),
            "fsck replies are verdicts only, got `{line}`"
        );
        if line.starts_with("done ") {
            assert_eq!(line.trim_end(), "done 1 0 0 0 0", "one clean slot left");
            break;
        }
    }

    // `store audit` on the same connection: vet bytes without storing.
    let probe = format!("store audit sims {victim} {}\n", VALID_SIM.len());
    writer.write_all(probe.as_bytes()).unwrap();
    writer.write_all(VALID_SIM).unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "ok audited");
    assert!(
        !remote.raw_stat("sims", victim),
        "audit must not store the body"
    );
    let garbage = b"rotted bytes\n";
    let probe = format!("store audit sims {victim} {}\n", garbage.len());
    writer.write_all(probe.as_bytes()).unwrap();
    writer.write_all(garbage).unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("error ") && line.contains("rejected"),
        "got `{line}`"
    );
    // Connection still aligned after the refusal.
    writer.write_all(b"store stat prepared 0\n").unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "absent");

    daemon.stop();
}

#[test]
fn corrupt_put_sa_is_refused_without_poisoning_the_shard() {
    let store_dir = temp_path("sa-store");
    let socket = temp_path("sa-sock");
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());
    let remote = ArtifactStore::connect(&daemon.endpoint).unwrap();

    // Seed the shared shard with one known-good entry.
    let mut seed = SaTable::new(4, 4);
    seed.insert(cdfg::FuType::AddSub, 1, 1, 2.0);
    let stats = remote.merge_sa_table(&seed);
    assert_eq!((stats.inserted, stats.conflicting), (1, 0));

    // A corrupt body straight onto the wire: the daemon reads the full
    // body (keeping the stream aligned), refuses with an error line, and
    // merges nothing.
    let stream = UnixStream::connect(&socket).unwrap();
    let mut writer = &stream;
    let garbage = b"not an sa table at all\n";
    writer
        .write_all(format!("store put-sa {}\n", garbage.len()).as_bytes())
        .unwrap();
    writer.write_all(garbage).unwrap();
    writer.flush().unwrap();
    let mut reader = BufReader::new(&stream);
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("error ") && line.contains("unparseable"),
        "got `{line}`"
    );

    // Same connection, a valid merge right after: protocol-clean refusal.
    let mut more = SaTable::new(4, 4);
    more.insert(cdfg::FuType::Mul, 2, 2, 5.0);
    let body = more.to_bin();
    writer
        .write_all(format!("store put-sa {}\n", body.len()).as_bytes())
        .unwrap();
    writer.write_all(&body).unwrap();
    writer.flush().unwrap();
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "ok 1 0 0", "merge resumes after refusal");

    // The shard holds exactly the two good entries — nothing from the
    // poisoned body, nothing lost.
    let shard = remote.load_sa_table(SaMode::Precalculated, 4, 4).unwrap();
    assert_eq!(shard.len(), 2);
    assert_eq!(shard.lookup(cdfg::FuType::AddSub, 1, 1), Some(2.0));
    assert_eq!(shard.lookup(cdfg::FuType::Mul, 2, 2), Some(5.0));

    // And the stored shard still passes a daemon-side audit.
    let report = remote
        .fsck_with(&FsckOptions {
            repair: RepairMode::Off,
            full: true,
        })
        .unwrap();
    assert!(report.issues.is_empty(), "{report}");
    daemon.stop();
}

#[test]
fn fsck_runs_concurrently_with_a_live_put_stream() {
    let store_dir = temp_path("live-store");
    let socket = temp_path("live-sock");
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());
    let endpoint = daemon.endpoint.clone();

    // One client streams puts while another loops fsck against the same
    // daemon: the checker may observe any prefix of the put stream, but
    // must never report a defect or torn slot.
    const PUTS: u64 = 24;
    let writer = {
        let endpoint = endpoint.clone();
        std::thread::spawn(move || {
            let remote = ArtifactStore::connect(&endpoint).unwrap();
            for i in 0..PUTS {
                let name = format!("{:032x}", 0xabc0_de00_u64 + i);
                remote.raw_put("sims", &name, VALID_SIM);
            }
        })
    };
    let checker = std::thread::spawn(move || {
        let remote = ArtifactStore::connect(&endpoint).unwrap();
        for _ in 0..12 {
            let report = remote
                .fsck_with(&FsckOptions {
                    repair: RepairMode::Off,
                    full: false,
                })
                .unwrap();
            assert!(report.issues.is_empty(), "mid-stream fsck: {report}");
            assert!(report.scanned <= PUTS as usize, "{report}");
        }
    });
    writer.join().unwrap();
    checker.join().unwrap();

    // Settled: a full pass sees every put, clean, and leaves watermarks
    // coherent enough that a fast pass re-audits nothing.
    let remote = ArtifactStore::connect(&daemon.endpoint).unwrap();
    let full = remote
        .fsck_with(&FsckOptions {
            repair: RepairMode::Off,
            full: true,
        })
        .unwrap();
    assert_eq!(full.scanned, PUTS as usize, "{full}");
    assert!(full.issues.is_empty(), "{full}");
    let warm = remote
        .fsck_with(&FsckOptions {
            repair: RepairMode::Off,
            full: false,
        })
        .unwrap();
    assert_eq!(warm.audited(), 0, "{warm}");
    daemon.stop();
}
