//! Acceptance tests for the staged pipeline:
//!
//! * the same configuration produces **byte-identical** result tables
//!   whether the benchmark × binder matrix runs on 1 job or N jobs;
//! * per-benchmark `Schedule`/`RegisterBinding` artifacts are computed
//!   exactly once no matter how many binders run;
//! * the SA table's text persistence round-trips to identical lookups.

use cdfg::FuType;
use hlpower::{paper_constraint, Binder, FlowConfig, FlowResult, Pipeline, SaTable, SharedSaTable};

fn suite(names: &[&str]) -> Vec<(cdfg::Cdfg, cdfg::ResourceConstraint)> {
    names
        .iter()
        .map(|n| {
            let p = cdfg::profile(n).unwrap();
            (cdfg::generate(p, p.seed), paper_constraint(n).unwrap())
        })
        .collect()
}

/// Formats every deterministic field of a result — the byte-level
/// fingerprint an experiment table is built from.
fn fingerprint(results: &[Vec<FlowResult>]) -> String {
    let mut out = String::new();
    for per in results {
        for r in per {
            out.push_str(&format!(
                "{} {} steps={} regs={} fus={}/{} ok={} luts={} depth={} sa={:.6} \
                 mux={}/{}/{:.4}/{:.4} trans={} glitch={:.6} mw={:.6} clk={:.4} saq={}\n",
                r.name,
                r.binder,
                r.schedule_steps,
                r.registers,
                r.fus_addsub,
                r.fus_mul,
                r.meets_constraint,
                r.luts,
                r.depth,
                r.estimated_sa,
                r.mux.largest,
                r.mux.length,
                r.mux.muxdiff_mean(),
                r.mux.muxdiff_variance(),
                r.power.total_transitions,
                r.power.glitch_fraction,
                r.power.dynamic_power_mw,
                r.power.clock_period_ns,
                r.sa_queries,
            ));
        }
    }
    out
}

#[test]
fn tables_identical_for_one_and_many_jobs() {
    let suite = suite(&["pr", "wang", "mcm"]);
    let binders = [
        Binder::Lopass,
        Binder::HlPower { alpha: 1.0 },
        Binder::HlPower { alpha: 0.5 },
    ];
    let cfg = FlowConfig::fast();
    let serial = Pipeline::new(cfg.clone()).run_matrix(&suite, &binders, 1);
    let parallel = Pipeline::new(cfg).run_matrix(&suite, &binders, 4);
    assert_eq!(
        fingerprint(&serial),
        fingerprint(&parallel),
        "result tables must be byte-identical between --jobs 1 and --jobs 4"
    );
}

#[test]
fn word_engine_single_lane_fingerprint_matches_scalar_engine() {
    // Every paper table runs at the default `--lanes 1` (word engine);
    // its full deterministic fingerprint must equal the scalar reference
    // engine's (`--lanes 0`) — the end-to-end form of the gatesim
    // differential tests.
    let suite = suite(&["pr", "wang"]);
    let binders = [Binder::Lopass, Binder::HlPower { alpha: 0.5 }];
    let scalar_cfg = FlowConfig {
        lanes: 0,
        ..FlowConfig::fast()
    };
    let word_cfg = FlowConfig {
        lanes: 1,
        ..FlowConfig::fast()
    };
    let scalar = Pipeline::new(scalar_cfg).run_matrix(&suite, &binders, 2);
    let word = Pipeline::new(word_cfg).run_matrix(&suite, &binders, 2);
    assert_eq!(
        fingerprint(&scalar),
        fingerprint(&word),
        "one word-parallel lane must replay the scalar engine byte for byte"
    );
}

#[test]
fn word_engine_many_lanes_fingerprint_is_reproducible() {
    let suite = suite(&["wang"]);
    let binders = [Binder::HlPower { alpha: 0.5 }];
    let cfg = FlowConfig {
        lanes: 64,
        ..FlowConfig::fast()
    };
    let a = Pipeline::new(cfg.clone()).run_matrix(&suite, &binders, 1);
    let b = Pipeline::new(cfg).run_matrix(&suite, &binders, 4);
    assert_eq!(
        fingerprint(&a),
        fingerprint(&b),
        "fixed-seed 64-lane runs must be byte-identical across job counts"
    );
}

#[test]
fn front_end_artifacts_computed_once_per_benchmark() {
    let suite = suite(&["pr", "wang"]);
    let binders = [
        Binder::Lopass,
        Binder::LopassInterconnect,
        Binder::HlPower { alpha: 1.0 },
        Binder::HlPower { alpha: 0.5 },
        Binder::HlPowerZeroDelay { alpha: 0.5 },
    ];
    let pipeline = Pipeline::new(FlowConfig::fast());
    pipeline.run_matrix(&suite, &binders, 4);
    let c = pipeline.counters();
    assert_eq!(c.schedules, 2, "one schedule per benchmark, not per binder");
    assert_eq!(c.register_bindings, 2, "one register binding per benchmark");
    assert_eq!(c.fu_bindings, 10, "one FU binding per benchmark x binder");
    assert_eq!(c.elaborations, 10);
    assert_eq!(c.mappings, 10);
    assert_eq!(c.simulations, 10);
}

#[test]
fn sa_table_persistence_roundtrips_to_identical_lookups() {
    let mut table = SaTable::new(4, 4);
    table.precompute(4);
    let text = table.to_text();
    let mut restored = SaTable::from_text(&text).unwrap();
    assert_eq!(restored.len(), table.len());
    for fu in FuType::ALL {
        for a in 1..=4 {
            for b in 1..=4 {
                let orig = table.get(fu, a, b);
                let back = restored.get(fu, a, b);
                assert!((orig - back).abs() < 1e-5, "{fu} {a}x{b}: {orig} vs {back}");
            }
        }
    }
    let (_, misses) = restored.counters();
    assert_eq!(misses, 0, "every lookup must come from the loaded entries");
    // And the same file seeds a pipeline's shared cross-job cache.
    let shared = SharedSaTable::from_table(&SaTable::from_text(&text).unwrap());
    assert_eq!(shared.len(), table.len());
    let v = shared.get(FuType::AddSub, 2, 2);
    assert!((v - table.get(FuType::AddSub, 2, 2)).abs() < 1e-5);
    let (_, misses) = shared.counters();
    assert_eq!(misses, 0);
}
