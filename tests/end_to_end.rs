//! Cross-crate integration tests: the complete paper pipeline on real
//! (generated) benchmarks at reduced width — every stage checked against
//! the stage-independent reference model.

use cdfg::{FuType, ResourceConstraint};
use gatesim::Evaluator;
use hlpower::flow::{bind, prepare, sa_table_for};
use hlpower::{
    elaborate, execute, paper_constraint, write_vhdl, Binder, DatapathConfig, FlowConfig,
};
use mapper::{map, MapConfig, MapObjective};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

fn small_flow() -> FlowConfig {
    FlowConfig {
        width: 4,
        sa_width: 4,
        sim_cycles: 60,
        ..FlowConfig::default()
    }
}

/// Every binder produces a datapath that computes the benchmark's exact
/// function, before and after technology mapping.
#[test]
fn all_binders_preserve_function_on_pr() {
    let p = cdfg::profile("pr").unwrap();
    let g = cdfg::generate(p, p.seed);
    let rc = paper_constraint("pr").unwrap();
    let cfg = small_flow();
    let (sched, rb) = prepare(&g, &rc, &cfg);
    let mut rng = StdRng::seed_from_u64(77);
    for binder in [
        Binder::Lopass,
        Binder::LopassInterconnect,
        Binder::LopassAnnealed,
        Binder::HlPower { alpha: 0.5 },
        Binder::HlPowerZeroDelay { alpha: 0.5 },
    ] {
        let mut table = sa_table_for(&cfg, binder);
        let fb = bind(&g, &sched, &rb, &rc, binder, &mut table).fb;
        fb.validate(&g, &sched).unwrap();
        assert!(fb.meets(&rc), "{:?}", binder);
        let dp = elaborate(&g, &sched, &rb, &fb, &DatapathConfig::with_width(cfg.width));
        let data: Vec<u64> = (0..g.inputs().len())
            .map(|_| rng.gen_range(0..16))
            .collect();
        let expected = g.evaluate(&data, cfg.width);
        assert_eq!(
            execute(&dp, &dp.netlist, &data),
            expected,
            "{binder:?} gate-level"
        );
        let mapped = map(&dp.netlist, &MapConfig::new(4, MapObjective::GlitchSa));
        assert_eq!(
            execute(&dp, &mapped.netlist, &data),
            expected,
            "{binder:?} mapped"
        );
    }
}

/// The shared preparation really is shared: schedule, register binding,
/// and FU counts agree across binders (the paper's controlled setup).
#[test]
fn binders_share_schedule_and_registers() {
    let p = cdfg::profile("wang").unwrap();
    let g = cdfg::generate(p, p.seed);
    let rc = paper_constraint("wang").unwrap();
    let cfg = small_flow();
    let a = hlpower::run_benchmark(&g, &rc, Binder::Lopass, &cfg);
    let b = hlpower::run_benchmark(&g, &rc, Binder::HlPower { alpha: 0.5 }, &cfg);
    assert_eq!(a.schedule_steps, b.schedule_steps);
    assert_eq!(a.registers, b.registers);
    assert_eq!(a.fus_addsub, b.fus_addsub);
    assert_eq!(a.fus_mul, b.fus_mul);
    assert_eq!((a.fus_addsub, a.fus_mul), (rc.addsub, rc.mul));
}

/// Estimated switching activity ranks bindings consistently with the
/// simulator on the same mapped netlists (within a generous band — the
/// estimator ignores data correlations).
#[test]
fn estimator_and_simulator_roughly_agree_on_bindings() {
    let p = cdfg::profile("wang").unwrap();
    let g = cdfg::generate(p, p.seed);
    let rc = paper_constraint("wang").unwrap();
    let cfg = FlowConfig {
        width: 4,
        sa_width: 4,
        sim_cycles: 200,
        ..FlowConfig::default()
    };
    let r = hlpower::run_benchmark(&g, &rc, Binder::HlPower { alpha: 0.5 }, &cfg);
    // Per-cycle measured transitions vs estimated SA per cycle.
    let measured_per_cycle = r.power.total_transitions as f64 / cfg.sim_cycles as f64;
    let ratio = r.estimated_sa / measured_per_cycle;
    assert!(
        (0.3..3.0).contains(&ratio),
        "estimate {:.1} vs measured {:.1} per cycle (ratio {ratio:.2})",
        r.estimated_sa,
        measured_per_cycle
    );
}

/// The whole suite schedules, binds, and meets the paper's Table 2
/// constraints (Theorem 1 at suite scale).
#[test]
fn suite_meets_paper_constraints() {
    let cfg = small_flow();
    for p in &cdfg::PROFILES {
        let g = cdfg::generate(p, p.seed);
        let rc = paper_constraint(p.name).unwrap();
        let (sched, rb) = prepare(&g, &rc, &cfg);
        for binder in [Binder::Lopass, Binder::HlPower { alpha: 0.5 }] {
            let mut table = sa_table_for(&cfg, binder);
            let fb = bind(&g, &sched, &rb, &rc, binder, &mut table).fb;
            fb.validate(&g, &sched).unwrap();
            assert!(fb.meets(&rc), "{} with {:?}", p.name, binder);
            for ty in [FuType::AddSub, FuType::Mul] {
                let count = fb.count(ty);
                let lower = sched.min_resources(&g, ty);
                // First-fit allocates exactly the schedule's maximum
                // concurrent occupancy; HLPower merges only while the
                // constraint is exceeded, so it may stop anywhere between
                // the lower bound and the constraint.
                match binder {
                    Binder::Lopass => assert_eq!(count, lower, "{} {ty:?}", p.name),
                    _ => assert!(
                        count >= lower && count <= rc.limit(ty).max(lower),
                        "{} {ty:?}: {count} outside [{lower}, {}]",
                        p.name,
                        rc.limit(ty).max(lower)
                    ),
                }
            }
        }
    }
}

/// VHDL and BLIF artifacts of a bound datapath are well-formed (BLIF
/// round-trips through our own parser; VHDL passes structural checks).
#[test]
fn artifacts_are_well_formed() {
    let p = cdfg::profile("pr").unwrap();
    let g = cdfg::generate(p, p.seed);
    let rc = paper_constraint("pr").unwrap();
    let cfg = small_flow();
    let (sched, rb) = prepare(&g, &rc, &cfg);
    let binder = Binder::HlPower { alpha: 0.5 };
    let mut table = sa_table_for(&cfg, binder);
    let fb = bind(&g, &sched, &rb, &rc, binder, &mut table).fb;
    let dp = elaborate(&g, &sched, &rb, &fb, &DatapathConfig::with_width(4));

    let blif = netlist::write_blif(&dp.netlist);
    let back = netlist::parse_blif(&blif)
        .unwrap()
        .flatten(None, &[])
        .unwrap();
    back.check().unwrap();
    assert_eq!(back.num_latches(), dp.netlist.num_latches());
    assert_eq!(back.inputs().len(), dp.netlist.inputs().len());

    let vhdl = write_vhdl(&dp);
    assert!(vhdl.contains("entity pr_dp is"));
    assert!(vhdl.matches("rising_edge").count() == 1);
    // Balanced begin/end structure.
    assert_eq!(vhdl.matches("end architecture;").count(), 1);
    assert_eq!(vhdl.matches("end entity;").count(), 1);
}

/// The zero-delay evaluator and the unit-delay event simulator agree on
/// settled values for an entire bound datapath across many cycles.
#[test]
fn simulators_agree_on_datapath() {
    let p = cdfg::profile("wang").unwrap();
    let g = cdfg::generate(p, p.seed);
    let rc = ResourceConstraint::new(2, 2);
    let cfg = small_flow();
    let (sched, rb) = prepare(&g, &rc, &cfg);
    let binder = Binder::HlPower { alpha: 1.0 };
    let mut table = sa_table_for(&cfg, binder);
    let fb = bind(&g, &sched, &rb, &rc, binder, &mut table).fb;
    let dp = elaborate(&g, &sched, &rb, &fb, &DatapathConfig::with_width(4));
    let mut ev = Evaluator::new(&dp.netlist);
    let mut sim = gatesim::CycleSim::new(&dp.netlist);
    let data: Vec<u64> = (0..g.inputs().len() as u64).collect();
    for c in 0..(dp.num_steps * 2) {
        let v = dp.input_vector(c % dp.num_steps, &data);
        // A clock edge captures pre-edge D values, then the new inputs
        // apply: step_clock first, then set inputs and settle.
        ev.step_clock();
        for (k, &i) in dp.netlist.inputs().iter().enumerate() {
            ev.set_input(i, v[k]);
        }
        ev.settle();
        sim.step(&v);
        for (id, _) in dp.netlist.nodes() {
            assert_eq!(ev.value(id), sim.value(id), "node {id} cycle {c}");
        }
    }
}
