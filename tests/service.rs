//! Acceptance tests for the typed service API and the daemon:
//!
//! * a [`Service`]-executed request matches the staged [`Pipeline`] it
//!   wraps, bit for bit;
//! * a daemon on a unix socket serves the same request to many clients
//!   from one hot store: the **second identical request executes zero
//!   schedule/map/simulate stages** and its reply is **byte-identical**
//!   to every later warm reply;
//! * a remote report equals a local store-backed report;
//! * daemon-side failures come back as error replies, not hangs.

use hlpower::api::{request, Endpoint, JobReport, JobRequest, Server, Service};
use hlpower::{ArtifactStore, Binder, FlowConfig, Pipeline};
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "hlpower-service-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

fn fast_request(name: &str) -> JobRequest {
    // Mirrors FlowConfig::fast(): width 4, SA width 4, 100 cycles.
    JobRequest::suite(name).width(4).sa_width(4).cycles(100)
}

/// The deterministic payload of a report — everything except the
/// per-request stats attribution.
fn result_text(report: &JobReport) -> String {
    JobReport {
        result: report.result.clone(),
        stats: Default::default(),
    }
    .to_text()
}

#[test]
fn service_request_matches_the_pipeline_it_wraps() {
    let report = Service::new().execute(&fast_request("wang")).unwrap();
    let p = cdfg::profile("wang").unwrap();
    let g = cdfg::generate(p, p.seed);
    let rc = hlpower::paper_constraint("wang").unwrap();
    let direct = Pipeline::new(FlowConfig::fast()).run(&g, &rc, Binder::HlPower { alpha: 0.5 });
    let r = &report.result;
    assert_eq!(r.name, direct.name);
    assert_eq!(r.binder, direct.binder);
    assert_eq!(r.schedule_steps, direct.schedule_steps);
    assert_eq!(r.registers, direct.registers);
    assert_eq!(r.luts, direct.luts);
    assert_eq!(r.depth, direct.depth);
    assert_eq!(r.estimated_sa.to_bits(), direct.estimated_sa.to_bits());
    assert_eq!(r.mux, direct.mux);
    assert_eq!(
        r.power.dynamic_power_mw.to_bits(),
        direct.power.dynamic_power_mw.to_bits()
    );
    assert_eq!(r.power.total_transitions, direct.power.total_transitions);
    assert_eq!(r.sa_queries, direct.sa_queries);
}

#[cfg(unix)]
#[test]
fn warm_daemon_answers_repeat_requests_with_zero_stage_executions() {
    let store_dir = temp_path("store");
    let socket = temp_path("sock");
    let service =
        Arc::new(Service::new().with_store(Arc::new(ArtifactStore::open(&store_dir).unwrap())));
    let server = Server::bind(&Endpoint::Unix(socket.clone())).unwrap();
    let endpoint = Endpoint::Unix(socket);
    std::thread::spawn(move || {
        let _ = server.serve(service);
    });

    let req = fast_request("wang");
    let first = request(&endpoint, &req).unwrap();
    let second = request(&endpoint, &req).unwrap();
    let third = request(&endpoint, &req).unwrap();

    // Cold request really computed; the repeats executed *zero*
    // schedule/map/simulate stages (binding is recomputed by design —
    // it is cheap and feeds on the pooled SA cache).
    assert!(first.stats.stages.mappings > 0);
    assert!(first.stats.stages.simulations > 0);
    for warm in [&second, &third] {
        assert_eq!(warm.stats.stages.schedules, 0);
        assert_eq!(warm.stats.stages.register_bindings, 0);
        assert_eq!(warm.stats.stages.elaborations, 0);
        assert_eq!(warm.stats.stages.mappings, 0);
        assert_eq!(warm.stats.stages.simulations, 0);
    }

    // The deterministic payload never varies, and warm replies are
    // byte-identical in full (their stats deltas are all zeros).
    assert_eq!(result_text(&first), result_text(&second));
    assert_eq!(second.to_text(), third.to_text());

    // A local store-backed run of the same request reproduces the
    // remote report's payload byte for byte.
    let local_store = Arc::new(ArtifactStore::open(&store_dir).unwrap());
    let local = Service::new()
        .with_store(local_store)
        .execute(&req)
        .unwrap();
    assert_eq!(result_text(&local), result_text(&first));

    // Daemon-side failures are error replies, not hangs or disconnects.
    let err = request(&endpoint, &JobRequest::suite("nope")).unwrap_err();
    assert!(err.to_string().contains("unknown benchmark"), "{err}");

    // A different configuration through the same daemon is a distinct
    // job: it recomputes (no false sharing across configurations).
    let wider = request(&endpoint, &fast_request("wang").width(5)).unwrap();
    assert!(wider.stats.stages.mappings > 0);
    assert_ne!(wider.result.luts, first.result.luts);
}

#[cfg(unix)]
#[test]
fn daemon_serves_concurrent_clients_deterministically() {
    let socket = temp_path("conc-sock");
    let service = Arc::new(Service::new());
    let server = Server::bind(&Endpoint::Unix(socket.clone())).unwrap();
    std::thread::spawn(move || {
        let _ = server.serve(service);
    });
    let endpoint = Endpoint::Unix(socket);
    let reference = Service::new().execute(&fast_request("pr")).unwrap();
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let endpoint = endpoint.clone();
            std::thread::spawn(move || request(&endpoint, &fast_request("pr")).unwrap())
        })
        .collect();
    for handle in handles {
        let report = handle.join().unwrap();
        assert_eq!(result_text(&report), result_text(&reference));
    }
}
