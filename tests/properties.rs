//! Property-based tests (proptest) over the core data structures and
//! invariants: truth tables, netlists, BLIF round-trips, switching
//! activity bounds, bipartite matching optimality, scheduling and binding
//! legality on random CDFGs (paper Theorem 1).

use activity::{analyze, ActivityConfig, PairDist, SignalStats};
use cdfg::{
    list_schedule, lifetimes, Cdfg, LifetimeOptions, OpKind, ResourceConstraint,
    ResourceLibrary,
};
use hlpower::matching::max_weight_matching;
use hlpower::{bind_hlpower, bind_registers, HlPowerConfig, RegBindConfig, SaTable};
use netlist::{parse_blif, write_blif, Netlist, NodeId, TruthTable};
use proptest::prelude::*;

// ---------- truth tables -------------------------------------------------

fn arb_table(max_inputs: usize) -> impl Strategy<Value = TruthTable> {
    (1..=max_inputs).prop_flat_map(|n| {
        proptest::collection::vec(any::<u64>(), 1 << n.saturating_sub(6))
            .prop_map(move |words| {
                let needed = if n >= 6 { 1 << (n - 6) } else { 1 };
                let mut w = words;
                w.resize(needed, 0);
                TruthTable::from_words(n, w)
            })
    })
}

proptest! {
    /// Shannon expansion: f = (¬x ∧ f|x=0) ∨ (x ∧ f|x=1).
    #[test]
    fn shannon_expansion_holds(t in arb_table(6), var_seed in any::<u32>()) {
        let n = t.num_inputs();
        let var = (var_seed as usize) % n;
        let c0 = t.cofactor(var, false);
        let c1 = t.cofactor(var, true);
        for row in 0..t.num_rows() {
            let reduced = {
                let low = row & ((1u32 << var) - 1);
                let high = (row >> (var + 1)) << var;
                low | high
            };
            let expect = if row & (1 << var) != 0 { c1.eval(reduced) } else { c0.eval(reduced) };
            prop_assert_eq!(t.eval(row), expect);
        }
    }

    /// The Boolean difference is independent of the differentiating input
    /// and detects exactly the rows where flipping it changes f.
    #[test]
    fn boolean_difference_definition(t in arb_table(5), var_seed in any::<u32>()) {
        let n = t.num_inputs();
        let var = (var_seed as usize) % n;
        let diff = t.boolean_difference(var);
        for row in 0..t.num_rows() {
            if row & (1 << var) != 0 { continue; }
            let reduced = {
                let low = row & ((1u32 << var) - 1);
                let high = (row >> (var + 1)) << var;
                low | high
            };
            prop_assert_eq!(
                diff.eval(reduced),
                t.eval(row) != t.eval(row | (1 << var))
            );
        }
    }

    /// Double complement is the identity; complement flips every row.
    #[test]
    fn complement_involution(t in arb_table(6)) {
        prop_assert_eq!(t.complement().complement(), t.clone());
        prop_assert_eq!(t.complement().count_ones(), t.num_rows() - t.count_ones());
    }

    /// Permutation by the identity is the identity; applying a permutation
    /// twice with its inverse restores the table.
    #[test]
    fn permutation_roundtrip(t in arb_table(5), seed in any::<u64>()) {
        let n = t.num_inputs();
        let mut perm: Vec<usize> = (0..n).collect();
        // Fisher-Yates with a tiny deterministic LCG.
        let mut state = seed | 1;
        for i in (1..n).rev() {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1);
            let j = (state >> 33) as usize % (i + 1);
            perm.swap(i, j);
        }
        let permuted = t.permute(&perm);
        let mut inverse = vec![0usize; n];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        prop_assert_eq!(permuted.permute(&inverse), t);
    }
}

// ---------- probability bounds ------------------------------------------

proptest! {
    /// Pair distributions are proper distributions and signal stats stay
    /// within the feasibility bound s <= 2·min(P, 1-P).
    #[test]
    fn pair_dist_is_distribution(p in 0.0f64..1.0, s in 0.0f64..1.0) {
        let stats = SignalStats::new(p, s);
        prop_assert!(stats.activity <= 2.0 * stats.prob.min(1.0 - stats.prob) + 1e-12);
        let d = PairDist::from_stats(stats);
        let total = d.p00 + d.p01 + d.p10 + d.p11;
        prop_assert!((total - 1.0).abs() < 1e-9);
        prop_assert!(d.p00 >= 0.0 && d.p01 >= 0.0 && d.p10 >= 0.0 && d.p11 >= 0.0);
    }

    /// For any 2-level netlist with random tables, the glitch-aware SA is
    /// at least the functional SA and both are non-negative and bounded by
    /// the node count times the max per-step activity.
    #[test]
    fn sa_estimates_are_bounded(t1 in arb_table(3), t2 in arb_table(3)) {
        let n1 = t1.num_inputs();
        let n2 = t2.num_inputs();
        let mut nl = Netlist::new("p");
        let inputs: Vec<NodeId> =
            (0..(n1.max(n2 - 1) + 1)).map(|i| nl.add_input(format!("i{i}"))).collect();
        let g1 = nl.add_logic("g1", inputs[..n1].to_vec(), t1);
        let mut fan2 = vec![g1];
        fan2.extend(inputs[..n2 - 1].iter().copied());
        let g2 = nl.add_logic("g2", fan2[..n2].to_vec(), t2);
        nl.mark_output("o", g2);
        let rep = analyze(&nl, &ActivityConfig::uniform());
        prop_assert!(rep.total_sa >= rep.functional_sa - 1e-12);
        prop_assert!(rep.glitch_sa >= -1e-12);
        // Each node switches at most once per time step; two nodes with
        // depth <= 2 switch at most 3 distinct events total per cycle.
        prop_assert!(rep.total_sa <= 3.0 + 1e-9);
    }
}

// ---------- netlists and BLIF -------------------------------------------

/// Random small combinational netlist.
fn arb_netlist() -> impl Strategy<Value = Netlist> {
    (2usize..6, 1usize..12, any::<u64>()).prop_map(|(num_inputs, num_gates, seed)| {
        let mut nl = Netlist::new("rand");
        let mut pool: Vec<NodeId> =
            (0..num_inputs).map(|i| nl.add_input(format!("i{i}"))).collect();
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for k in 0..num_gates {
            let arity = 1 + next() % 3;
            let fanins: Vec<NodeId> =
                (0..arity).map(|_| pool[next() % pool.len()]).collect();
            let table = TruthTable::from_fn(arity, |row| {
                (next() + row as usize).is_multiple_of(2)
            });
            let g = nl.add_logic(format!("g{k}"), fanins, table);
            pool.push(g);
        }
        let out = *pool.last().unwrap();
        nl.mark_output("o", out);
        nl
    })
}

proptest! {
    /// BLIF round-trip preserves structure and function.
    #[test]
    fn blif_roundtrip_preserves_function(nl in arb_netlist()) {
        nl.check().unwrap();
        let text = write_blif(&nl);
        let back = parse_blif(&text).unwrap().flatten(None, &[]).unwrap();
        back.check().unwrap();
        prop_assert_eq!(back.inputs().len(), nl.inputs().len());
        // Compare the output function over all input assignments.
        let n = nl.inputs().len();
        let mut ev1 = gatesim::Evaluator::new(&nl);
        let mut ev2 = gatesim::Evaluator::new(&back);
        let (_, o1) = &nl.outputs()[0];
        let (_, o2) = &back.outputs()[0];
        for row in 0..(1u32 << n) {
            for (k, (&a, &b)) in nl.inputs().iter().zip(back.inputs()).enumerate() {
                ev1.set_input(a, row & (1 << k) != 0);
                ev2.set_input(b, row & (1 << k) != 0);
            }
            ev1.settle();
            ev2.settle();
            prop_assert_eq!(ev1.value(*o1), ev2.value(*o2), "row {}", row);
        }
    }

    /// Sweeping twice removes nothing new, and mapping preserves function.
    #[test]
    fn sweep_is_idempotent_and_map_preserves(nl in arb_netlist()) {
        let mut swept = nl.clone();
        swept.sweep();
        let mut again = swept.clone();
        prop_assert_eq!(again.sweep(), 0);
        let mapped = mapper::map(&swept, &mapper::MapConfig::default());
        let n = swept.inputs().len();
        let mut ev1 = gatesim::Evaluator::new(&swept);
        let mut ev2 = gatesim::Evaluator::new(&mapped.netlist);
        let (_, o1) = &swept.outputs()[0];
        let (_, o2) = &mapped.netlist.outputs()[0];
        for row in 0..(1u32 << n) {
            for (k, (&a, &b)) in swept.inputs().iter().zip(mapped.netlist.inputs()).enumerate() {
                ev1.set_input(a, row & (1 << k) != 0);
                ev2.set_input(b, row & (1 << k) != 0);
            }
            ev1.settle();
            ev2.settle();
            prop_assert_eq!(ev1.value(*o1), ev2.value(*o2), "row {}", row);
        }
    }
}

// ---------- matching ------------------------------------------------------

proptest! {
    /// Hungarian matching is optimal against brute force on small dense
    /// instances.
    #[test]
    fn matching_is_optimal(
        rows in 1usize..5,
        cols in 1usize..5,
        cells in proptest::collection::vec(proptest::option::of(1u32..100), 25)
    ) {
        let w: Vec<Vec<Option<f64>>> = (0..rows)
            .map(|r| (0..cols).map(|c| cells[r * 5 + c].map(|x| x as f64)).collect())
            .collect();
        let m = max_weight_matching(&w);
        // validity
        let mut used = vec![false; cols];
        let mut total = 0.0;
        for (r, c) in m.iter().enumerate() {
            if let Some(c) = *c {
                prop_assert!(!used[c]);
                used[c] = true;
                total += w[r][c].unwrap();
            }
        }
        // brute force
        fn brute(w: &[Vec<Option<f64>>], used: &mut Vec<bool>, row: usize) -> f64 {
            if row == w.len() { return 0.0; }
            let mut best = brute(w, used, row + 1);
            for c in 0..w[row].len() {
                if !used[c] {
                    if let Some(x) = w[row][c] {
                        used[c] = true;
                        best = best.max(x + brute(w, used, row + 1));
                        used[c] = false;
                    }
                }
            }
            best
        }
        let best = brute(&w, &mut vec![false; cols], 0);
        prop_assert!((total - best).abs() < 1e-9, "got {} optimal {}", total, best);
    }
}

// ---------- scheduling and binding (Theorem 1) ----------------------------

/// Random DAG-shaped CDFG.
fn arb_cdfg() -> impl Strategy<Value = Cdfg> {
    (2usize..5, 3usize..25, any::<u64>()).prop_map(|(inputs, ops, seed)| {
        let mut g = Cdfg::new("rand");
        let mut pool: Vec<cdfg::VarId> =
            (0..inputs).map(|i| g.add_input(format!("i{i}"))).collect();
        let mut state = seed | 1;
        let mut next = move || {
            state = state.wrapping_mul(6364136223846793005).wrapping_add(1442695040888963407);
            (state >> 33) as usize
        };
        for _ in 0..ops {
            let kind = match next() % 3 {
                0 => OpKind::Add,
                1 => OpKind::Sub,
                _ => OpKind::Mul,
            };
            let a = pool[next() % pool.len()];
            let b = pool[next() % pool.len()];
            let (_, v) = g.add_op(kind, a, b);
            pool.push(v);
        }
        g.mark_output(*pool.last().unwrap());
        g
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// Theorem 1: for single-cycle libraries, HLPower always reaches the
    /// minimum resource allocation of the schedule; and every produced
    /// binding/schedule/register assignment is internally consistent.
    #[test]
    fn theorem1_minimum_constraint_reachable(g in arb_cdfg(), add in 1usize..4, mul in 1usize..4) {
        g.check().unwrap();
        let lib = ResourceLibrary::default();
        let rc = ResourceConstraint::new(add, mul);
        let sched = list_schedule(&g, &lib, &rc);
        sched.validate(&g, Some(&rc)).unwrap();
        let rb = bind_registers(&g, &sched, &RegBindConfig::default());
        rb.validate(&g).unwrap();
        let mut table = SaTable::new(4, 4);
        let (fb, _) = bind_hlpower(&g, &sched, &rb, &rc, &mut table, &HlPowerConfig::default());
        fb.validate(&g, &sched).unwrap();
        prop_assert!(fb.meets(&rc), "constraint must be reachable (Theorem 1)");
        // The binder never allocates below the schedule's lower bound, and
        // stops merging once the constraint is satisfied.
        for ty in cdfg::FuType::ALL {
            let count = fb.count(ty);
            let lower = sched.min_resources(&g, ty);
            prop_assert!(count >= lower, "{count} below lower bound {lower}");
            if g.op_count(ty) > 0 {
                prop_assert!(count <= rc.limit(ty).max(lower));
            }
        }
    }

    /// Lifetime analysis is consistent: variables sharing a register never
    /// overlap, and the allocation equals the maximum live set.
    #[test]
    fn register_binding_invariants(g in arb_cdfg()) {
        let lib = ResourceLibrary::default();
        let rc = ResourceConstraint::new(2, 2);
        let sched = list_schedule(&g, &lib, &rc);
        let opts = LifetimeOptions::default();
        let lt = lifetimes(&g, &sched, &opts);
        let rb = bind_registers(&g, &sched, &RegBindConfig::default());
        rb.validate(&g).unwrap();
        prop_assert_eq!(rb.num_regs, lt.max_overlap(sched.num_steps));
    }
}
