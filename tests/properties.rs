//! Property-based tests over the core data structures and invariants:
//! truth tables, netlists, BLIF round-trips, switching activity bounds,
//! bipartite matching optimality, scheduling and binding legality on
//! random CDFGs (paper Theorem 1).
//!
//! The build environment is offline, so instead of `proptest` these use
//! a small deterministic case generator: every test enumerates seeded
//! random instances, so failures reproduce exactly and CI needs no
//! shrinking. Each case seed prints in the assertion message.

use activity::{analyze, ActivityConfig, PairDist, SignalStats};
use cdfg::{
    lifetimes, list_schedule, Cdfg, LifetimeOptions, OpKind, ResourceConstraint, ResourceLibrary,
};
use hlpower::matching::max_weight_matching;
use hlpower::{bind_hlpower, bind_registers, HlPowerConfig, RegBindConfig, SaTable};
use netlist::{parse_blif, write_blif, Netlist, NodeId, TruthTable};
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Deterministic per-case RNG: the same in-tree `rand` stand-in the
/// rest of the workspace uses, seeded by the case index so failures
/// reproduce exactly without shrinking.
fn case_rng(case: u64) -> StdRng {
    StdRng::seed_from_u64(case)
}

/// Random truth table with 1..=`max_inputs` inputs.
fn arb_table(g: &mut StdRng, max_inputs: usize) -> TruthTable {
    let n = g.gen_range(1..max_inputs + 1);
    let needed = if n >= 6 { 1 << (n - 6) } else { 1 };
    let words: Vec<u64> = (0..needed).map(|_| g.gen::<u64>()).collect();
    TruthTable::from_words(n, words)
}

// ---------- truth tables -------------------------------------------------

/// Shannon expansion: f = (¬x ∧ f|x=0) ∨ (x ∧ f|x=1).
#[test]
fn shannon_expansion_holds() {
    for case in 0..128u64 {
        let mut g = case_rng(case);
        let t = arb_table(&mut g, 6);
        let n = t.num_inputs();
        let var = g.gen_range(0..n);
        let c0 = t.cofactor(var, false);
        let c1 = t.cofactor(var, true);
        for row in 0..t.num_rows() {
            let reduced = {
                let low = row & ((1u32 << var) - 1);
                let high = (row >> (var + 1)) << var;
                low | high
            };
            let expect = if row & (1 << var) != 0 {
                c1.eval(reduced)
            } else {
                c0.eval(reduced)
            };
            assert_eq!(t.eval(row), expect, "case {case} var {var} row {row}");
        }
    }
}

/// The Boolean difference is independent of the differentiating input
/// and detects exactly the rows where flipping it changes f.
#[test]
fn boolean_difference_definition() {
    for case in 0..128u64 {
        let mut g = case_rng(case);
        let t = arb_table(&mut g, 5);
        let n = t.num_inputs();
        let var = g.gen_range(0..n);
        let diff = t.boolean_difference(var);
        for row in 0..t.num_rows() {
            if row & (1 << var) != 0 {
                continue;
            }
            let reduced = {
                let low = row & ((1u32 << var) - 1);
                let high = (row >> (var + 1)) << var;
                low | high
            };
            assert_eq!(
                diff.eval(reduced),
                t.eval(row) != t.eval(row | (1 << var)),
                "case {case} var {var} row {row}"
            );
        }
    }
}

/// Double complement is the identity; complement flips every row.
#[test]
fn complement_involution() {
    for case in 0..128u64 {
        let mut g = case_rng(case);
        let t = arb_table(&mut g, 6);
        assert_eq!(t.complement().complement(), t.clone(), "case {case}");
        assert_eq!(
            t.complement().count_ones(),
            t.num_rows() - t.count_ones(),
            "case {case}"
        );
    }
}

/// Permutation by the identity is the identity; applying a permutation
/// twice with its inverse restores the table.
#[test]
fn permutation_roundtrip() {
    for case in 0..128u64 {
        let mut g = case_rng(case);
        let t = arb_table(&mut g, 5);
        let n = t.num_inputs();
        let mut perm: Vec<usize> = (0..n).collect();
        // Fisher-Yates.
        for i in (1..n).rev() {
            let j = g.gen_range(0..i + 1);
            perm.swap(i, j);
        }
        let permuted = t.permute(&perm);
        let mut inverse = vec![0usize; n];
        for (i, &p) in perm.iter().enumerate() {
            inverse[p] = i;
        }
        assert_eq!(permuted.permute(&inverse), t, "case {case} perm {perm:?}");
    }
}

// ---------- probability bounds ------------------------------------------

/// Pair distributions are proper distributions and signal stats stay
/// within the feasibility bound s <= 2·min(P, 1-P).
#[test]
fn pair_dist_is_distribution() {
    for case in 0..256u64 {
        let mut g = case_rng(case);
        let (p, s) = (g.gen::<f64>(), g.gen::<f64>());
        let stats = SignalStats::new(p, s);
        assert!(
            stats.activity <= 2.0 * stats.prob.min(1.0 - stats.prob) + 1e-12,
            "case {case}"
        );
        let d = PairDist::from_stats(stats);
        let total = d.p00 + d.p01 + d.p10 + d.p11;
        assert!((total - 1.0).abs() < 1e-9, "case {case}: total {total}");
        assert!(
            d.p00 >= 0.0 && d.p01 >= 0.0 && d.p10 >= 0.0 && d.p11 >= 0.0,
            "case {case}"
        );
    }
}

/// For any 2-level netlist with random tables, the glitch-aware SA is
/// at least the functional SA and both are non-negative and bounded by
/// the node count times the max per-step activity.
#[test]
fn sa_estimates_are_bounded() {
    for case in 0..96u64 {
        let mut g = case_rng(case);
        let t1 = arb_table(&mut g, 3);
        let t2 = arb_table(&mut g, 3);
        let n1 = t1.num_inputs();
        let n2 = t2.num_inputs();
        let mut nl = Netlist::new("p");
        let inputs: Vec<NodeId> = (0..(n1.max(n2 - 1) + 1))
            .map(|i| nl.add_input(format!("i{i}")))
            .collect();
        let g1 = nl.add_logic("g1", inputs[..n1].to_vec(), t1);
        let mut fan2 = vec![g1];
        fan2.extend(inputs[..n2 - 1].iter().copied());
        let g2 = nl.add_logic("g2", fan2[..n2].to_vec(), t2);
        nl.mark_output("o", g2);
        let rep = analyze(&nl, &ActivityConfig::uniform());
        assert!(rep.total_sa >= rep.functional_sa - 1e-12, "case {case}");
        assert!(rep.glitch_sa >= -1e-12, "case {case}");
        // Each node switches at most once per time step; two nodes with
        // depth <= 2 switch at most 3 distinct events total per cycle.
        assert!(rep.total_sa <= 3.0 + 1e-9, "case {case}: {}", rep.total_sa);
    }
}

// ---------- netlists and BLIF -------------------------------------------

/// Random small combinational netlist.
fn arb_netlist(g: &mut StdRng) -> Netlist {
    let num_inputs = g.gen_range(2..6);
    let num_gates = g.gen_range(1..12);
    let mut nl = Netlist::new("rand");
    let mut pool: Vec<NodeId> = (0..num_inputs)
        .map(|i| nl.add_input(format!("i{i}")))
        .collect();
    for k in 0..num_gates {
        let arity = 1 + g.gen_range(0..3);
        let fanins: Vec<NodeId> = (0..arity)
            .map(|_| pool[g.gen_range(0..pool.len())])
            .collect();
        let bits = g.gen::<u64>();
        let table = TruthTable::from_fn(arity, |row| bits >> (row % 64) & 1 == 1);
        let gate = nl.add_logic(format!("g{k}"), fanins, table);
        pool.push(gate);
    }
    let out = *pool.last().unwrap();
    nl.mark_output("o", out);
    nl
}

/// BLIF round-trip preserves structure and function.
#[test]
fn blif_roundtrip_preserves_function() {
    for case in 0..48u64 {
        let mut g = case_rng(case);
        let nl = arb_netlist(&mut g);
        nl.check().unwrap();
        let text = write_blif(&nl);
        let back = parse_blif(&text).unwrap().flatten(None, &[]).unwrap();
        back.check().unwrap();
        assert_eq!(back.inputs().len(), nl.inputs().len(), "case {case}");
        // Compare the output function over all input assignments.
        let n = nl.inputs().len();
        let mut ev1 = gatesim::Evaluator::new(&nl);
        let mut ev2 = gatesim::Evaluator::new(&back);
        let (_, o1) = &nl.outputs()[0];
        let (_, o2) = &back.outputs()[0];
        for row in 0..(1u32 << n) {
            for (k, (&a, &b)) in nl.inputs().iter().zip(back.inputs()).enumerate() {
                ev1.set_input(a, row & (1 << k) != 0);
                ev2.set_input(b, row & (1 << k) != 0);
            }
            ev1.settle();
            ev2.settle();
            assert_eq!(ev1.value(*o1), ev2.value(*o2), "case {case} row {row}");
        }
    }
}

/// Sweeping twice removes nothing new, and mapping preserves function.
#[test]
fn sweep_is_idempotent_and_map_preserves() {
    for case in 0..48u64 {
        let mut g = case_rng(case);
        let nl = arb_netlist(&mut g);
        let mut swept = nl.clone();
        swept.sweep();
        let mut again = swept.clone();
        assert_eq!(again.sweep(), 0, "case {case}");
        let mapped = mapper::map(&swept, &mapper::MapConfig::default());
        let n = swept.inputs().len();
        let mut ev1 = gatesim::Evaluator::new(&swept);
        let mut ev2 = gatesim::Evaluator::new(&mapped.netlist);
        let (_, o1) = &swept.outputs()[0];
        let (_, o2) = &mapped.netlist.outputs()[0];
        for row in 0..(1u32 << n) {
            for (k, (&a, &b)) in swept
                .inputs()
                .iter()
                .zip(mapped.netlist.inputs())
                .enumerate()
            {
                ev1.set_input(a, row & (1 << k) != 0);
                ev2.set_input(b, row & (1 << k) != 0);
            }
            ev1.settle();
            ev2.settle();
            assert_eq!(ev1.value(*o1), ev2.value(*o2), "case {case} row {row}");
        }
    }
}

// ---------- matching ------------------------------------------------------

/// Hungarian matching is optimal against brute force on small dense
/// instances.
#[test]
fn matching_is_optimal() {
    for case in 0..256u64 {
        let mut g = case_rng(case);
        let rows = g.gen_range(1..5);
        let cols = g.gen_range(1..5);
        let w: Vec<Vec<Option<f64>>> = (0..rows)
            .map(|_| {
                (0..cols)
                    .map(|_| {
                        if g.gen_range(0..4) == 0 {
                            None
                        } else {
                            Some(g.gen_range(1..100) as f64)
                        }
                    })
                    .collect()
            })
            .collect();
        let m = max_weight_matching(&w);
        // validity
        let mut used = vec![false; cols];
        let mut total = 0.0;
        for (r, c) in m.iter().enumerate() {
            if let Some(c) = *c {
                assert!(!used[c], "case {case}: column {c} used twice");
                used[c] = true;
                total += w[r][c].unwrap();
            }
        }
        // brute force
        fn brute(w: &[Vec<Option<f64>>], used: &mut Vec<bool>, row: usize) -> f64 {
            if row == w.len() {
                return 0.0;
            }
            let mut best = brute(w, used, row + 1);
            for c in 0..w[row].len() {
                if !used[c] {
                    if let Some(x) = w[row][c] {
                        used[c] = true;
                        best = best.max(x + brute(w, used, row + 1));
                        used[c] = false;
                    }
                }
            }
            best
        }
        let best = brute(&w, &mut vec![false; cols], 0);
        assert!(
            (total - best).abs() < 1e-9,
            "case {case}: got {total} optimal {best}"
        );
    }
}

// ---------- scheduling and binding (Theorem 1) ----------------------------

/// Random DAG-shaped CDFG.
fn arb_cdfg(g: &mut StdRng) -> Cdfg {
    let inputs = g.gen_range(2..5);
    let ops = g.gen_range(3..25);
    let mut cdfg = Cdfg::new("rand");
    let mut pool: Vec<cdfg::VarId> = (0..inputs)
        .map(|i| cdfg.add_input(format!("i{i}")))
        .collect();
    for _ in 0..ops {
        let kind = match g.gen_range(0..3) {
            0 => OpKind::Add,
            1 => OpKind::Sub,
            _ => OpKind::Mul,
        };
        let a = pool[g.gen_range(0..pool.len())];
        let b = pool[g.gen_range(0..pool.len())];
        let (_, v) = cdfg.add_op(kind, a, b);
        pool.push(v);
    }
    cdfg.mark_output(*pool.last().unwrap());
    cdfg
}

/// Theorem 1: for single-cycle libraries, HLPower always reaches the
/// minimum resource allocation of the schedule; and every produced
/// binding/schedule/register assignment is internally consistent.
#[test]
fn theorem1_minimum_constraint_reachable() {
    for case in 0..48u64 {
        let mut gen = case_rng(case);
        let g = arb_cdfg(&mut gen);
        let add = gen.gen_range(1..4);
        let mul = gen.gen_range(1..4);
        g.check().unwrap();
        let lib = ResourceLibrary::default();
        let rc = ResourceConstraint::new(add, mul);
        let sched = list_schedule(&g, &lib, &rc);
        sched.validate(&g, Some(&rc)).unwrap();
        let rb = bind_registers(&g, &sched, &RegBindConfig::default());
        rb.validate(&g).unwrap();
        let mut table = SaTable::new(4, 4);
        let (fb, _) = bind_hlpower(&g, &sched, &rb, &rc, &mut table, &HlPowerConfig::default());
        fb.validate(&g, &sched).unwrap();
        assert!(
            fb.meets(&rc),
            "case {case}: constraint must be reachable (Theorem 1)"
        );
        // The binder never allocates below the schedule's lower bound, and
        // stops merging once the constraint is satisfied.
        for ty in cdfg::FuType::ALL {
            let count = fb.count(ty);
            let lower = sched.min_resources(&g, ty);
            assert!(
                count >= lower,
                "case {case}: {count} below lower bound {lower}"
            );
            if g.op_count(ty) > 0 {
                assert!(count <= rc.limit(ty).max(lower), "case {case}");
            }
        }
    }
}

/// Lifetime analysis is consistent: variables sharing a register never
/// overlap, and the allocation equals the maximum live set.
#[test]
fn register_binding_invariants() {
    for case in 0..48u64 {
        let mut gen = case_rng(case);
        let g = arb_cdfg(&mut gen);
        let lib = ResourceLibrary::default();
        let rc = ResourceConstraint::new(2, 2);
        let sched = list_schedule(&g, &lib, &rc);
        let opts = LifetimeOptions::default();
        let lt = lifetimes(&g, &sched, &opts);
        let rb = bind_registers(&g, &sched, &RegBindConfig::default());
        rb.validate(&g).unwrap();
        assert_eq!(rb.num_regs, lt.max_overlap(sched.num_steps), "case {case}");
    }
}
