//! Slab-engine acceptance tests at the integration level:
//!
//! * on a **mapped** array multiplier (the glitch benchmark the paper's
//!   estimates hinge on), a 256-lane slab run is exactly the lane
//!   decomposition of four 64-lane word-engine runs;
//! * a single slab lane replays the scalar `CycleSim` reference stream
//!   byte for byte;
//! * the `hlp` CLI rejects `--lanes` above the slab maximum at parse
//!   time with exit code 2 and a diagnostic naming the flag and value.

use gatesim::{run_random, run_random_slab, WordSim, WordVectorSource, MAX_LANES};
use mapper::{map, MapConfig, MapObjective};
use netlist::{cells, Netlist, NodeId};

fn mapped_multiplier(w: usize) -> Netlist {
    let mut nl = Netlist::new("mul");
    let a: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("a{i}"))).collect();
    let b: Vec<NodeId> = (0..w).map(|i| nl.add_input(format!("b{i}"))).collect();
    let p = cells::array_multiplier(&mut nl, "m", &a, &b);
    for (i, s) in p.iter().enumerate() {
        nl.mark_output(format!("p{i}"), *s);
    }
    map(&nl, &MapConfig::new(4, MapObjective::GlitchSa)).netlist
}

#[test]
fn mapped_multiplier_slab_decomposes_into_word_subruns() {
    let mapped = mapped_multiplier(8);
    let seed = 42;
    let steps = 200;
    let lanes = 4 * MAX_LANES;
    let slab = run_random_slab(&mapped, steps, seed, lanes);

    let mut total = 0u64;
    let mut functional = 0u64;
    let mut per_node = vec![0u64; mapped.num_nodes()];
    for j in 0..lanes / MAX_LANES {
        let mut sim = WordSim::new(&mapped, MAX_LANES);
        let mut src = WordVectorSource::with_lane_offset(seed, MAX_LANES, MAX_LANES * j);
        let mut words = vec![0u64; mapped.inputs().len()];
        for _ in 0..steps {
            src.fill_words(&mut words);
            sim.step(&words);
        }
        let s = sim.stats();
        total += s.total_transitions;
        functional += s.functional_transitions;
        for (acc, x) in per_node.iter_mut().zip(&s.per_node) {
            *acc += x;
        }
    }
    assert_eq!(
        slab.total_transitions, total,
        "256-lane slab totals must equal the sum of its four 64-lane sub-runs"
    );
    assert_eq!(slab.functional_transitions, functional);
    assert_eq!(
        slab.per_node, per_node,
        "per-node counts must decompose too"
    );
    assert_eq!(slab.cycles, steps * lanes as u64);
}

#[test]
fn single_slab_lane_replays_scalar_reference() {
    let mapped = mapped_multiplier(4);
    let seed = 7;
    let steps = 300;
    let slab = run_random_slab(&mapped, steps, seed, 1);
    let scalar = run_random(&mapped, steps, seed);
    assert_eq!(slab.total_transitions, scalar.total_transitions);
    assert_eq!(slab.functional_transitions, scalar.functional_transitions);
    assert_eq!(slab.per_node, scalar.per_node);
}

#[test]
fn cli_rejects_lanes_above_slab_maximum_with_exit_2() {
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hlp"))
        .args(["bench", "pr", "--lanes", "513"])
        .output()
        .expect("spawn hlp");
    assert_eq!(
        out.status.code(),
        Some(2),
        "--lanes 513 must be a usage error (exit 2), got {:?}",
        out.status
    );
    let stderr = String::from_utf8_lossy(&out.stderr);
    assert!(
        stderr.contains("--lanes") && stderr.contains("513"),
        "diagnostic must name the flag and the offending value:\n{stderr}"
    );
    assert!(
        stderr.contains("0..=512"),
        "diagnostic must state the accepted range:\n{stderr}"
    );
}

#[test]
fn cli_accepts_lanes_at_slab_maximum() {
    // Boundary acceptance: 512 lanes must get past argument parsing.
    // A full benchmark run is too slow for a unit test, so use `run`,
    // which validates flags *before* touching the CDFG file: a missing
    // file after clean parsing is a runtime error (1), not usage (2).
    let out = std::process::Command::new(env!("CARGO_BIN_EXE_hlp"))
        .args([
            "run",
            "/nonexistent/hlp-slab-boundary.cdfg",
            "--lanes",
            "512",
        ])
        .output()
        .expect("spawn hlp");
    assert_eq!(
        out.status.code(),
        Some(1),
        "--lanes 512 must parse cleanly (runtime failure 1, not usage 2): {:?}\n{}",
        out.status,
        String::from_utf8_lossy(&out.stderr)
    );
}
