//! Acceptance tests for the event-driven daemon rearchitecture:
//!
//! * a `batch N` frame's replies are byte-identical to N sequential
//!   requests (and to local execution), and a warm batch executes zero
//!   schedule/map/simulate stages;
//! * oversize and empty batch frames are refused protocol-clean (the
//!   error names the batch cap; an empty frame leaves the connection
//!   serviceable);
//! * `control stats` counters reconcile with the requests actually
//!   made, verb by verb, including batch accounting;
//! * a `store fsck` sweep over the wire surfaces in
//!   `control fsck-status` and inside the `control stats` block.
//!
//! Admission control (park-with-`busy`, promotion after drain,
//! zero-depth rejection) is covered in `remote_store.rs` alongside the
//! other socket-level hardening tests.

#![cfg(unix)]

use hlpower::api::{self, Endpoint, JobReport, JobRequest, Server, Service};
use hlpower::{ArtifactStore, ServeOptions};
use std::io::{BufRead, BufReader, Write};
use std::os::unix::net::UnixStream;
use std::path::PathBuf;
use std::sync::atomic::{AtomicU32, Ordering};
use std::sync::Arc;

fn temp_path(tag: &str) -> PathBuf {
    static N: AtomicU32 = AtomicU32::new(0);
    std::env::temp_dir().join(format!(
        "hlpower-daemon-{tag}-{}-{}",
        std::process::id(),
        N.fetch_add(1, Ordering::Relaxed)
    ))
}

/// A daemon under test: serving thread + the endpoint to reach it.
struct Daemon {
    endpoint: Endpoint,
    handle: std::thread::JoinHandle<std::io::Result<()>>,
}

impl Daemon {
    fn start(socket: &std::path::Path, store_dir: &std::path::Path, opts: ServeOptions) -> Daemon {
        let service =
            Arc::new(Service::new().with_store(Arc::new(ArtifactStore::open(store_dir).unwrap())));
        let server = Server::bind(&Endpoint::Unix(socket.to_path_buf())).unwrap();
        let handle = std::thread::spawn(move || server.serve_with(service, opts));
        Daemon {
            endpoint: Endpoint::Unix(socket.to_path_buf()),
            handle,
        }
    }

    fn stop(self) {
        api::stop_daemon(&self.endpoint).unwrap();
        self.handle
            .join()
            .expect("serve thread must not panic")
            .expect("graceful stop exits Ok");
        if let Endpoint::Unix(path) = &self.endpoint {
            assert!(!path.exists(), "graceful stop unlinks the socket file");
        }
    }
}

fn fast_request(name: &str) -> JobRequest {
    JobRequest::suite(name).width(4).sa_width(4).cycles(100)
}

/// The deterministic payload of a report — everything except the
/// per-request stats attribution.
fn result_text(report: &JobReport) -> String {
    JobReport {
        result: report.result.clone(),
        stats: Default::default(),
    }
    .to_text()
}

#[test]
fn batch_replies_match_sequential_requests_and_warm_batches_skip_stages() {
    let store_dir = temp_path("batch-store");
    let socket = temp_path("batch-sock");
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());

    let reqs = vec![
        fast_request("wang"),
        fast_request("pr"),
        fast_request("wang").width(5),
    ];

    // Sequential round-trips first (cold: these populate the store).
    let sequential: Vec<JobReport> = reqs
        .iter()
        .map(|r| api::request(&daemon.endpoint, r).unwrap())
        .collect();

    // One batched round-trip with the same jobs: same payloads, in
    // request order, regardless of how the scheduler fanned them out.
    let batch = api::request_batch(&daemon.endpoint, &reqs).unwrap();
    assert_eq!(batch.len(), reqs.len());
    for (seq, bat) in sequential.iter().zip(&batch) {
        let bat = bat.as_ref().expect("batched job succeeds");
        assert_eq!(result_text(seq), result_text(bat));
    }

    // And identical to local execution: the wire adds nothing.
    for (req, bat) in reqs.iter().zip(&batch) {
        let local = Service::new().execute(req).unwrap();
        assert_eq!(result_text(&local), result_text(bat.as_ref().unwrap()));
    }

    // The store is warm now: a second batch must execute zero expensive
    // stages — every report is assembled from store hits.
    let warm = api::request_batch(&daemon.endpoint, &reqs).unwrap();
    for rep in &warm {
        let stages = format!("{}", rep.as_ref().unwrap().stats.stages);
        assert!(
            stages.contains("0 schedules")
                && stages.contains("0 mappings")
                && stages.contains("0 simulations"),
            "warm batch must be all store hits, got `{stages}`"
        );
    }

    // Failures ride inside the frame without disturbing their
    // neighbours' replies.
    let mixed = vec![fast_request("wang"), JobRequest::suite("nope")];
    let replies = api::request_batch(&daemon.endpoint, &mixed).unwrap();
    assert!(replies[0].is_ok());
    assert!(replies[1].is_err());

    daemon.stop();
}

#[test]
fn oversize_and_empty_batch_frames_are_refused_protocol_clean() {
    let store_dir = temp_path("cap-store");
    let socket = temp_path("cap-sock");
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());

    // A frame claiming more jobs than the daemon cap is refused at the
    // header — before any job line is read — with an error naming the
    // batch cap.
    let conn = UnixStream::connect(&socket).unwrap();
    {
        let mut writer = &conn;
        writer.write_all(b"batch 100000\n").unwrap();
        writer.flush().unwrap();
    }
    let mut line = String::new();
    BufReader::new(&conn).read_line(&mut line).unwrap();
    assert!(
        line.starts_with("error ") && line.contains("batch"),
        "got `{line}`"
    );

    // An empty frame is refused too, but the connection stays
    // serviceable: the next request on it is answered normally.
    let conn = UnixStream::connect(&socket).unwrap();
    let mut reader = BufReader::new(&conn);
    {
        let mut writer = &conn;
        writer.write_all(b"batch 0\n").unwrap();
        writer.flush().unwrap();
    }
    let mut line = String::new();
    reader.read_line(&mut line).unwrap();
    assert!(
        line.starts_with("error ") && line.contains("batch"),
        "got `{line}`"
    );
    {
        let mut writer = &conn;
        writer.write_all(b"store stat prepared 0\n").unwrap();
        writer.flush().unwrap();
    }
    line.clear();
    reader.read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "absent");

    // The typed client surfaces a refused frame as one error, not N.
    let too_many: Vec<JobRequest> = (0..api::MAX_BATCH_JOBS + 1)
        .map(|_| fast_request("wang"))
        .collect();
    let err = api::request_batch(&daemon.endpoint, &too_many).unwrap_err();
    assert!(err.to_string().contains("batch"), "got `{err}`");

    daemon.stop();
}

#[test]
fn control_stats_counters_reconcile_with_the_requests_made() {
    let store_dir = temp_path("stats-store");
    let socket = temp_path("stats-sock");
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());

    // Three job requests, one store verb, then a snapshot.
    for _ in 0..3 {
        api::request(&daemon.endpoint, &fast_request("wang")).unwrap();
    }
    let conn = UnixStream::connect(&socket).unwrap();
    {
        let mut writer = &conn;
        writer.write_all(b"store stat prepared 0\n").unwrap();
        writer.flush().unwrap();
    }
    let mut line = String::new();
    BufReader::new(&conn).read_line(&mut line).unwrap();
    assert_eq!(line.trim_end(), "absent");

    let s = api::fetch_stats(&daemon.endpoint).unwrap();
    let verb = |name: &str| {
        let i = api::STAT_VERBS.iter().position(|v| *v == name).unwrap();
        &s.verbs[i]
    };
    assert_eq!(verb("job").requests, 3, "{s:?}");
    assert_eq!(verb("job").errors, 0);
    assert!(verb("job").bytes_out > 0);
    // Every request lands in exactly one latency bucket.
    assert_eq!(verb("job").latency.iter().sum::<u64>(), 3);
    assert_eq!(verb("store").requests, 1);
    // The snapshot request records itself before rendering.
    assert!(verb("control").requests >= 1);
    assert_eq!(s.batches, 0);
    assert!(s.conns_accepted >= 5);

    // Batch accounting: one frame, two jobs.
    let reqs = vec![fast_request("wang"), fast_request("pr")];
    api::request_batch(&daemon.endpoint, &reqs).unwrap();
    let s = api::fetch_stats(&daemon.endpoint).unwrap();
    let batch_i = api::STAT_VERBS.iter().position(|v| *v == "batch").unwrap();
    assert_eq!(s.verbs[batch_i].requests, 1);
    assert_eq!(s.batches, 1);
    assert_eq!(s.batch_jobs, 2);
    assert_eq!(s.batch_largest, 2);
    // The warm store answered those batch jobs from cache.
    assert!(s.store_hits > 0, "{s:?}");

    daemon.stop();
}

#[test]
fn a_wire_fsck_sweep_surfaces_in_fsck_status_and_stats() {
    let store_dir = temp_path("fsck-store");
    let socket = temp_path("fsck-sock");
    let daemon = Daemon::start(&socket, &store_dir, ServeOptions::default());

    // Nothing audited yet.
    let before = api::fetch_fsck_status(&daemon.endpoint).unwrap();
    assert_eq!(before.runs, 0);

    // Populate the store, then audit it over the wire.
    api::request(&daemon.endpoint, &fast_request("wang")).unwrap();
    let conn = UnixStream::connect(&socket).unwrap();
    let mut reader = BufReader::new(&conn);
    {
        let mut writer = &conn;
        writer.write_all(b"store fsck off full\n").unwrap();
        writer.flush().unwrap();
    }
    let done = loop {
        let mut line = String::new();
        assert!(reader.read_line(&mut line).unwrap() > 0, "mid-fsck EOF");
        if line.starts_with("done ") {
            break line.trim_end().to_string();
        }
        assert!(line.starts_with("bad "), "unexpected fsck line `{line}`");
    };

    // The sweep's counters are now exposed to monitoring, and they
    // agree with the wire reply's `done` line.
    let status = api::fetch_fsck_status(&daemon.endpoint).unwrap();
    assert_eq!(status.runs, 1);
    assert_eq!(
        done,
        format!(
            "done {} {} {} {} {}",
            status.scanned,
            status.skipped_unchanged,
            status.issues,
            status.quarantined,
            status.fixed
        )
    );
    assert!(status.scanned > 0, "a populated store scans something");

    // And the same counters ride inside the full stats block.
    let s = api::fetch_stats(&daemon.endpoint).unwrap();
    assert_eq!(s.fsck.runs, 1);
    assert_eq!(s.fsck.scanned, status.scanned);

    daemon.stop();
}
