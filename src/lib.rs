//! Workspace root crate: re-exports the HLPower reproduction stack for the
//! examples and integration tests that live at the repository root.
#![warn(missing_docs)]
pub use {activity, cdfg, gatesim, hlpower, mapper, netlist};
