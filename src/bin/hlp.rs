//! `hlp` — command-line driver for the HLPower flow.
//!
//! ```text
//! hlp run <file.cdfg> [options]     bind a CDFG file and report
//! hlp bench <name> [options]        run one suite benchmark end to end
//! hlp table <out.txt> [options]     precompute an SA table to a file
//! hlp merge <dst> <src>...          merge artifact stores (shard fan-in)
//! hlp suite                         list the built-in benchmarks
//!
//! options:
//!   --width N        datapath width in bits        (default 16)
//!   --adders N       adder/subtractor constraint   (default 2)
//!   --mults N        multiplier constraint         (default 2)
//!   --alpha A        Eq. 4 weighting coefficient   (default 0.5)
//!   --binder NAME    lopass | lopass-ic | lopass-sa | hlpower  (default hlpower)
//!   --cycles N       simulation cycles             (default 1000)
//!   --lanes N        word-parallel simulation lanes, 1..=64
//!                    (default 1 — byte-identical to the scalar engine,
//!                    which `--lanes 0` selects explicitly); lane L's
//!                    vector stream is seeded with lane_seed(seed, L)
//!   --sa-mode M      SA-table training: precalculated | zero-delay |
//!                    simulated | dynamic  (default precalculated;
//!                    `simulated` measures each entry with the
//!                    word-parallel simulator instead of the estimator,
//!                    `dynamic` is the paper's uncached-estimation
//!                    runtime ablation and is refused by `table` since
//!                    it never memoizes). Applies to `table` output and
//!                    to the binder's edge weights in `run`/`bench` —
//!                    pair it with `--sa-table` to persist/reload
//!                    matching tables
//!   --fsm            elaborate the on-chip FSM controller
//!   --vhdl PATH      write structural VHDL
//!   --blif PATH      write the gate-level netlist as BLIF
//!   --dot PATH       write the scheduled CDFG as Graphviz
//!   --sa-table PATH  load/store the SA precalculation table
//!   --store DIR      content-addressed artifact store: prepared
//!                    schedules, mapped netlists, simulation summaries,
//!                    and the SA table persist across invocations (the
//!                    SA table needs no separate --sa-table flag here —
//!                    the store shards it by mode/width/k automatically)
//! ```
//!
//! Every command drives the staged [`Pipeline`]: the schedule/register
//! binding are named artifacts, the binder draws SA estimates from the
//! pipeline's shared cache, and `--sa-table` persists that cache across
//! invocations (the paper's offline hash-table file). `hlp merge` is the
//! fan-in step of a sharded experiment run: it unions the artifact
//! stores that `--shard i/N` workers warmed, so one final unsharded run
//! against the merged store reproduces the full report from cache alone.

use cdfg::ResourceConstraint;
use hlpower::{ArtifactStore, Binder, ControlStyle, FlowConfig, Pipeline, SaMode, SaTable};
use std::process::exit;
use std::sync::Arc;

struct Options {
    width: usize,
    rc: ResourceConstraint,
    alpha: f64,
    binder: Binder,
    cycles: u64,
    lanes: usize,
    sa_mode: SaMode,
    fsm: bool,
    vhdl: Option<String>,
    blif: Option<String>,
    dot: Option<String>,
    sa_table: Option<String>,
    store: Option<String>,
}

fn usage() -> ! {
    eprintln!(
        "usage: hlp <run FILE | bench NAME | table OUT | merge DST SRC... | suite> \
         [--width N] [--adders N] [--mults N] [--alpha A] [--binder B] \
         [--cycles N] [--lanes N] [--sa-mode M] [--fsm] \
         [--vhdl P] [--blif P] [--dot P] [--sa-table P] [--store DIR]"
    );
    exit(2)
}

fn parse_options(args: &[String]) -> Options {
    let mut o = Options {
        width: 16,
        rc: ResourceConstraint::new(2, 2),
        alpha: 0.5,
        binder: Binder::HlPower { alpha: 0.5 },
        cycles: 1000,
        lanes: 1,
        sa_mode: SaMode::Precalculated,
        fsm: false,
        vhdl: None,
        blif: None,
        dot: None,
        sa_table: None,
        store: None,
    };
    let mut binder_name = "hlpower".to_string();
    let mut i = 0;
    while i < args.len() {
        let value = |i: &mut usize| -> String {
            *i += 1;
            args.get(*i).cloned().unwrap_or_else(|| usage())
        };
        match args[i].as_str() {
            "--width" => {
                o.width = value(&mut i).parse().unwrap_or_else(|_| usage());
                if o.width == 0 || o.width > 64 {
                    eprintln!("--width must be in 1..=64 (word-level buses are u64)");
                    usage();
                }
            }
            "--adders" => o.rc.addsub = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--mults" => o.rc.mul = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--alpha" => o.alpha = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--binder" => binder_name = value(&mut i),
            "--cycles" => o.cycles = value(&mut i).parse().unwrap_or_else(|_| usage()),
            "--lanes" => {
                o.lanes = value(&mut i).parse().unwrap_or_else(|_| usage());
                if o.lanes > gatesim::MAX_LANES {
                    eprintln!("--lanes is limited to {} lanes", gatesim::MAX_LANES);
                    usage();
                }
            }
            "--sa-mode" => {
                let name = value(&mut i);
                o.sa_mode = SaMode::parse(&name).unwrap_or_else(|| {
                    eprintln!("unknown SA mode `{name}`");
                    usage()
                });
            }
            "--fsm" => o.fsm = true,
            "--vhdl" => o.vhdl = Some(value(&mut i)),
            "--blif" => o.blif = Some(value(&mut i)),
            "--dot" => o.dot = Some(value(&mut i)),
            "--sa-table" => o.sa_table = Some(value(&mut i)),
            "--store" => o.store = Some(value(&mut i)),
            _ => usage(),
        }
        i += 1;
    }
    o.binder = match binder_name.as_str() {
        "lopass" => Binder::Lopass,
        "lopass-ic" => Binder::LopassInterconnect,
        "lopass-sa" => Binder::LopassAnnealed,
        "hlpower" => Binder::HlPower { alpha: o.alpha },
        "hlpower-zd" => Binder::HlPowerZeroDelay { alpha: o.alpha },
        other => {
            eprintln!("unknown binder `{other}`");
            usage()
        }
    };
    o
}

fn flow_config(o: &Options) -> FlowConfig {
    FlowConfig {
        width: o.width,
        sa_width: o.width.min(8),
        sim_cycles: o.cycles,
        sa_mode: o.sa_mode,
        lanes: o.lanes,
        control: if o.fsm {
            ControlStyle::Fsm
        } else {
            ControlStyle::External
        },
        ..FlowConfig::default()
    }
}

/// Seeds the SA cache the selected binder draws from using `--sa-table`,
/// if given. Tables with a mismatched width/LUT size/estimation mode are
/// refused (they would silently change Eq. 4 edge weights). Returns
/// whether writing back to the path is safe — a refused table belongs to
/// a different configuration and must not be clobbered.
fn load_table(o: &Options, pipeline: &Pipeline) -> bool {
    if let Some(path) = &o.sa_table {
        if let Ok(text) = std::fs::read_to_string(path) {
            match SaTable::from_text(&text) {
                Ok(t) => match pipeline.seed_sa_cache(o.binder, &t) {
                    Ok(stats) => {
                        eprintln!("loaded SA table `{path}`: {stats}");
                        if stats.conflicting > 0 {
                            eprintln!(
                                "warning: `{path}` disagrees with the current cache on \
                                 {} entries (cache values kept)",
                                stats.conflicting
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("ignoring SA table `{path}` and leaving it untouched: {e}");
                        return false;
                    }
                },
                Err(e) => {
                    // A corrupt file may still be mostly recoverable
                    // precomputed data — never overwrite it.
                    eprintln!("ignoring malformed SA table `{path}` and leaving it untouched: {e}");
                    return false;
                }
            }
        }
    }
    true
}

/// Persists the selected binder's SA cache back to `--sa-table`.
fn store_table(o: &Options, pipeline: &Pipeline) {
    if let Some(path) = &o.sa_table {
        let table = pipeline.sa_snapshot(o.binder);
        if let Err(e) = std::fs::write(path, table.to_text()) {
            eprintln!("cannot write SA table `{path}`: {e}");
        } else {
            eprintln!("saved SA table `{path}` ({} entries)", table.len());
        }
    }
}

/// Opens (creating if needed) the artifact store at `dir`, exiting with
/// a message on failure. `role` names the store in the error.
fn open_store_or_die(dir: &str, role: &str) -> ArtifactStore {
    ArtifactStore::open(dir).unwrap_or_else(|e| {
        eprintln!("cannot open {role} `{dir}`: {e}");
        exit(1);
    })
}

fn run_flow(g: &cdfg::Cdfg, o: &Options) {
    g.check().unwrap_or_else(|e| {
        eprintln!("invalid CDFG: {e}");
        exit(1);
    });
    println!("{}", g.profile_line());
    let pipeline = match &o.store {
        Some(dir) => Pipeline::with_store(
            flow_config(o),
            Arc::new(open_store_or_die(dir, "artifact store")),
        ),
        None => Pipeline::new(flow_config(o)),
    };
    let storable = load_table(o, &pipeline);
    let prep = pipeline.prepare(g, &o.rc);
    println!(
        "schedule: {} steps under (add={}, mult={})",
        prep.sched.num_steps, o.rc.addsub, o.rc.mul
    );
    let outcome = pipeline.bind(&prep, o.binder);
    if storable {
        store_table(o, &pipeline);
    }
    println!(
        "binding ({}): {} FUs in {:.3}s, {} SA queries{}",
        o.binder.label(),
        outcome.fb.fus.len(),
        outcome.bind_time.as_secs_f64(),
        outcome.sa_queries,
        if outcome.fb.meets(&o.rc) {
            ""
        } else {
            "  [constraint NOT met]"
        }
    );
    for (i, fu) in outcome.fb.fus.iter().enumerate() {
        println!("  fu{i} ({}): {} ops", fu.ty, fu.ops.len());
    }
    let result = pipeline.measure(&prep, &outcome, o.binder);
    pipeline.flush_store();
    if pipeline.store().is_some() {
        let stats = pipeline.stats();
        eprintln!("store: {}", stats.store);
    }
    println!(
        "datapath: {} registers ({:?} control)",
        result.registers,
        pipeline.config().control
    );
    println!(
        "mapped:   {} LUTs, depth {}, estimated SA {:.1}",
        result.luts, result.depth, result.estimated_sa
    );
    println!(
        "muxes:    largest {}, length {}, muxDiff mean {:.2} var {:.2}",
        result.mux.largest,
        result.mux.length,
        result.mux.muxdiff_mean(),
        result.mux.muxdiff_variance()
    );
    println!(
        "measured: {:.2} mW dynamic, {:.1} ns clock, {:.1} M toggles/s/net, {:.0}% glitches",
        result.power.dynamic_power_mw,
        result.power.clock_period_ns,
        result.power.avg_toggle_rate_mhz,
        result.power.glitch_fraction * 100.0
    );

    // Optional artifacts (re-elaborate so artifacts match the options).
    if o.vhdl.is_some() || o.blif.is_some() || o.dot.is_some() {
        let dp = hlpower::elaborate(
            g,
            &prep.sched,
            &prep.rb,
            &outcome.fb,
            &hlpower::DatapathConfig {
                width: o.width,
                control: if o.fsm {
                    ControlStyle::Fsm
                } else {
                    ControlStyle::External
                },
            },
        );
        if let Some(path) = &o.vhdl {
            write_or_die(path, &hlpower::write_vhdl(&dp));
        }
        if let Some(path) = &o.blif {
            write_or_die(path, &netlist::write_blif(&dp.netlist));
        }
        if let Some(path) = &o.dot {
            write_or_die(path, &cdfg::to_dot(g, Some(&prep.sched)));
        }
    }
}

fn write_or_die(path: &str, content: &str) {
    match std::fs::write(path, content) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => {
            eprintln!("cannot write `{path}`: {e}");
            exit(1);
        }
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else { usage() };
    match command.as_str() {
        "run" => {
            let Some(path) = argv.get(1) else { usage() };
            let o = parse_options(&argv[2..]);
            let text = std::fs::read_to_string(path).unwrap_or_else(|e| {
                eprintln!("cannot read `{path}`: {e}");
                exit(1);
            });
            let (g, _) = cdfg::parse_cdfg(&text).unwrap_or_else(|e| {
                eprintln!("parse error in `{path}`: {e}");
                exit(1);
            });
            run_flow(&g, &o);
        }
        "bench" => {
            let Some(name) = argv.get(1) else { usage() };
            let mut o = parse_options(&argv[2..]);
            let Some(p) = cdfg::profile(name) else {
                eprintln!("unknown benchmark `{name}`; try `hlp suite`");
                exit(1);
            };
            if let Some(rc) = hlpower::paper_constraint(name) {
                o.rc = rc;
            }
            let g = cdfg::generate(p, p.seed);
            run_flow(&g, &o);
        }
        "table" => {
            let Some(out) = argv.get(1) else { usage() };
            let o = parse_options(&argv[2..]);
            if o.sa_mode == SaMode::Dynamic {
                // Dynamic mode is a run/bench ablation (uncached
                // estimation); it never memoizes, so there is nothing to
                // precompute into a file.
                eprintln!("--sa-mode dynamic never memoizes, so there is no table to store");
                usage();
            }
            let mut table = SaTable::new(o.width.min(8), 4).with_mode(o.sa_mode);
            eprintln!(
                "precomputing SA table up to 8x8 muxes (width {}, mode {})...",
                table.width(),
                o.sa_mode.name()
            );
            table.precompute(8);
            write_or_die(out, &table.to_text());
            // With --store, the precomputed entries also land in the
            // store's SA shard, so later --store runs start warm.
            if let Some(dir) = &o.store {
                let store = open_store_or_die(dir, "artifact store");
                let stats = store.merge_sa_table(&table);
                eprintln!("merged into store `{dir}`: {stats}");
            }
        }
        "merge" => {
            // Fan-in of a sharded run: union every source store into the
            // destination. Content-addressed artifacts copy over (byte
            // conflicts are reported, destination wins); SA shards merge
            // entry-wise with conflict accounting.
            let Some(dst) = argv.get(1) else { usage() };
            if argv.len() < 3 {
                eprintln!("merge needs at least one source store");
                usage();
            }
            let dst_store = open_store_or_die(dst, "destination store");
            let mut failed = false;
            for src in &argv[2..] {
                // Sources are read-only inputs: a mistyped path must fail
                // loudly, never be created (or half-planted inside some
                // existing directory) as an empty store.
                let src_store = ArtifactStore::open_existing(src).unwrap_or_else(|e| {
                    eprintln!("cannot open source store: {e}");
                    exit(1);
                });
                match dst_store.merge_from(&src_store) {
                    Ok(report) => {
                        println!("merged `{src}` into `{dst}`: {report}");
                        if report.conflicting > 0 || report.sa.conflicting > 0 {
                            eprintln!(
                                "warning: `{src}` conflicts with `{dst}` \
                                 ({} artifact(s), {} SA entries) — destination values kept",
                                report.conflicting, report.sa.conflicting
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("merging `{src}` into `{dst}` failed: {e}");
                        failed = true;
                    }
                }
            }
            if failed {
                exit(1);
            }
        }
        "suite" => {
            println!("built-in benchmarks (paper Table 1):");
            for p in &cdfg::PROFILES {
                let rc = hlpower::paper_constraint(p.name).expect("suite constraint");
                println!(
                    "  {:6}  {:3} PIs {:3} POs {:4} adds {:4} mults  (constraint add={} mult={})",
                    p.name, p.pis, p.pos, p.adds, p.muls, rc.addsub, rc.mul
                );
            }
        }
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
