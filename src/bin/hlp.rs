//! `hlp` — command-line driver for the HLPower flow.
//!
//! ```text
//! hlp run <file.cdfg> [options]     bind a CDFG file and report
//! hlp bench <name> [options]        run one suite benchmark end to end
//! hlp serve (--socket P | --port N) [--store DIR] [--max-clients N]
//!           [--workers N] [--queue-depth N] [--flush-every SECS]
//!                                   daemon: one hot store, many clients
//!                                   (jobs, `batch N` frames, artifact
//!                                   get/put/stat on one socket; a fixed
//!                                   worker pool behind a poll-based
//!                                   event loop; per-request log on
//!                                   stderr). Connections beyond
//!                                   --max-clients park with a `busy`
//!                                   line (up to --queue-depth) and are
//!                                   served FIFO as slots free; dirty SA
//!                                   shards flush every --flush-every
//!                                   seconds (0 disables) and on every
//!                                   batch completion
//! hlp serve --stop (--socket P | --port N)
//!                                   gracefully stop a running daemon
//!                                   (drain clients, flush SA shards,
//!                                   unlink the socket)
//! hlp serve --stats (--socket P | --port N)
//!                                   print a running daemon's monotonic
//!                                   counters (requests/errors/bytes/
//!                                   latency buckets per verb, store
//!                                   hit/miss, batch sizes, admission)
//! hlp serve --fsck-status (--socket P | --port N)
//!                                   print the counters of the daemon's
//!                                   most recent `store fsck` sweep
//! hlp batch --remote ADDR [FILE]    ship every request line in FILE (or
//!                                   stdin) to a daemon as one `batch N`
//!                                   frame; stdout is byte-identical to
//!                                   running the lines sequentially
//! hlp table <out.txt> [options]     precompute an SA table to a file
//! hlp merge <dst> <src>...          merge artifact stores (shard fan-in)
//! hlp check [--fix] <file>...       static semantic checking: .blif and
//!                                   .cdfg sources, exact netlist text,
//!                                   and store artifacts of either format
//!                                   (one verdict line per file; exit 1
//!                                   if any fails); --fix mechanically
//!                                   repairs netlist-carrying files in
//!                                   place (original kept at FILE.bak)
//! hlp fsck --store DIR|remote:ADDR [--repair[=fix]] [--full]
//!                                   audit every artifact in a store
//!                                   (container proof, codec decode,
//!                                   semantic check); incremental — slots
//!                                   whose audit watermark still matches
//!                                   are skipped unless --full; --repair
//!                                   renames defective files aside to
//!                                   *.bad, --repair=fix first attempts a
//!                                   mechanical fix (pre-fix bytes are
//!                                   quarantined, the fix must re-audit
//!                                   clean); a remote store is audited in
//!                                   place by its daemon — verdicts, not
//!                                   artifact bodies, cross the wire
//! hlp gc --store DIR [--max-age-days D] [--max-bytes B]
//!                                   store size accounting and pruning
//!                                   (quarantined *.bad files are counted
//!                                   but never pruned)
//! hlp store convert DIR [--store-format binary|text]
//!                                   re-encode every artifact in place
//! hlp suite [--requests]            list the built-in benchmarks
//!
//! options:
//!   --width N        datapath width in bits        (default 16)
//!   --adders N       adder/subtractor constraint   (default: the
//!                    paper's Table 2 value for suite benchmarks,
//!                    2 for CDFG files)
//!   --mults N        multiplier constraint         (same default)
//!   --alpha A        Eq. 4 weighting coefficient   (default 0.5)
//!   --binder SPEC    lopass | lopass-ic | lopass-sa | hlpower[:A] |
//!                    hlpower-zd[:A]  (default hlpower; a `:A` suffix
//!                    overrides --alpha)
//!   --cycles N       simulation cycles             (default 1000)
//!   --lanes N        word-parallel simulation lanes, 1..=512; above 64
//!                    the multi-word slab engine packs lanes/64 words
//!                    per node (default 1 — byte-identical to the scalar
//!                    engine, which `--lanes 0` selects explicitly)
//!   --sa-mode M      SA-table training: precalculated | zero-delay |
//!                    simulated | dynamic  (see README)
//!   --seed N         simulation + register-port seed
//!   --fsm            elaborate the on-chip FSM controller
//!   --remote ADDR    execute on an `hlp serve` daemon instead of in
//!                    process (ADDR = socket path or host:port); the
//!                    report is byte-identical to a local run
//!   --vhdl PATH      write structural VHDL          (local only)
//!   --blif PATH      write the gate-level netlist   (local only)
//!   --dot PATH       write the scheduled CDFG       (local only)
//!   --sa-table PATH  load/store the SA table        (local only)
//!   --store SPEC     content-addressed artifact store: a directory, or
//!                    `remote:ADDR` for the hot store of an `hlp serve`
//!                    daemon (not combinable with --remote, which ships
//!                    the whole job to the daemon instead)
//!   --store-format F `binary` (default: mmap-able, checksummed) or
//!                    `text` (debug/interchange) for new store writes;
//!                    reads always sniff per file, so the formats mix
//! ```
//!
//! Every command speaks the typed service API (`hlpower::api`): `run`
//! and `bench` build a [`JobRequest`], execute it on a [`Service`]
//! (local) or ship the same request line to a daemon (`--remote`), and
//! render the returned [`JobReport`] — so a remote report is
//! byte-identical to a local one, and a warm daemon answers with zero
//! schedule/map/simulate executions (printed on stderr). `hlp suite
//! --requests` emits the suite as request lines for scripted fan-out.
//!
//! Exit codes: 2 for command-line (usage) errors — with the offending
//! flag and value named on stderr — and 1 for runtime failures.

use cdfg::ResourceConstraint;
use hlpower::api::{self, Endpoint, JobReport, JobRequest, Server, Service};
use hlpower::{
    ArtifactStore, Binder, ControlStyle, GcPolicy, SaMode, SaTable, ServeOptions, StoreFormat,
};
use std::process::exit;
use std::sync::Arc;

struct Options {
    width: usize,
    adders: Option<usize>,
    mults: Option<usize>,
    alpha: f64,
    binder_spec: Option<String>,
    cycles: u64,
    lanes: usize,
    sa_mode: SaMode,
    seed: Option<u64>,
    fsm: bool,
    remote: Option<String>,
    vhdl: Option<String>,
    blif: Option<String>,
    dot: Option<String>,
    sa_table: Option<String>,
    store: Option<String>,
    store_format: StoreFormat,
}

fn usage() -> ! {
    eprintln!(
        "usage: hlp <run FILE | bench NAME | serve | batch | table OUT | merge DST SRC... | \
         check FILE... | fsck | gc | store convert DIR | suite> [--width N] [--adders N] \
         [--mults N] [--alpha A] [--binder B] [--cycles N] [--lanes N] [--sa-mode M] \
         [--seed N] [--fsm] [--remote ADDR] [--vhdl P] [--blif P] [--dot P] [--sa-table P] \
         [--store DIR|remote:ADDR] [--store-format binary|text]\n\
         hlp serve (--socket P | --port N) [--store DIR] [--store-format F] \
         [--max-clients N] [--workers N] [--queue-depth N] [--flush-every SECS] \
         | --stop | --stats | --fsck-status\n\
         hlp batch --remote ADDR [FILE]\n\
         hlp fsck --store DIR|remote:ADDR [--repair[=fix]] [--full]\n\
         hlp check [--fix] FILE..."
    );
    exit(2)
}

/// Command-line (usage) error: name the flag and the offending value,
/// exit 2.
fn bad_value(flag: &str, value: &str, expected: &str) -> ! {
    eprintln!("hlp: invalid value `{value}` for {flag}: expected {expected}");
    usage()
}

/// Runtime failure: exit 1.
fn die(msg: impl std::fmt::Display) -> ! {
    eprintln!("hlp: {msg}");
    exit(1)
}

fn parsed<T: std::str::FromStr>(flag: &str, value: &str, expected: &str) -> T {
    value
        .parse()
        .unwrap_or_else(|_| bad_value(flag, value, expected))
}

/// Consumes the value operand of `flag` from the argument list, with
/// the one missing-value diagnostic every subcommand parser shares.
fn take_value(args: &[String], i: &mut usize, flag: &str) -> String {
    *i += 1;
    args.get(*i).cloned().unwrap_or_else(|| {
        eprintln!("hlp: missing value for {flag}");
        usage()
    })
}

fn parse_options(args: &[String]) -> Options {
    let mut o = Options {
        width: 16,
        adders: None,
        mults: None,
        alpha: 0.5,
        binder_spec: None,
        cycles: 1000,
        lanes: 1,
        sa_mode: SaMode::Precalculated,
        seed: None,
        fsm: false,
        remote: None,
        vhdl: None,
        blif: None,
        dot: None,
        sa_table: None,
        store: None,
        store_format: StoreFormat::default(),
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let value = |i: &mut usize| take_value(args, i, &flag);
        match flag.as_str() {
            "--width" => {
                let v = value(&mut i);
                o.width = parsed(&flag, &v, "an integer in 1..=64");
                if o.width == 0 || o.width > 64 {
                    // Word-level buses are u64.
                    bad_value(&flag, &v, "an integer in 1..=64");
                }
            }
            "--adders" => o.adders = Some(parsed(&flag, &value(&mut i), "an integer")),
            "--mults" => o.mults = Some(parsed(&flag, &value(&mut i), "an integer")),
            "--alpha" => o.alpha = parsed(&flag, &value(&mut i), "a number"),
            "--binder" => o.binder_spec = Some(value(&mut i)),
            "--cycles" => o.cycles = parsed(&flag, &value(&mut i), "an integer"),
            "--lanes" => {
                let v = value(&mut i);
                o.lanes = parsed(&flag, &v, "a lane count in 0..=512");
                if o.lanes > gatesim::MAX_SLAB_LANES {
                    bad_value(&flag, &v, "a lane count in 0..=512");
                }
            }
            "--sa-mode" => {
                let v = value(&mut i);
                o.sa_mode = SaMode::parse(&v).unwrap_or_else(|| {
                    bad_value(
                        &flag,
                        &v,
                        "precalculated | dynamic | zero-delay | simulated",
                    )
                });
            }
            "--seed" => o.seed = Some(parsed(&flag, &value(&mut i), "an integer")),
            "--fsm" => o.fsm = true,
            "--remote" => o.remote = Some(value(&mut i)),
            "--vhdl" => o.vhdl = Some(value(&mut i)),
            "--blif" => o.blif = Some(value(&mut i)),
            "--dot" => o.dot = Some(value(&mut i)),
            "--sa-table" => o.sa_table = Some(value(&mut i)),
            "--store" => o.store = Some(value(&mut i)),
            "--store-format" => {
                let v = value(&mut i);
                o.store_format =
                    StoreFormat::parse(&v).unwrap_or_else(|| bad_value(&flag, &v, "binary | text"));
            }
            other => {
                eprintln!("hlp: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }
    o
}

/// The binder these options select: an explicit `--binder` spec (whose
/// `:ALPHA` suffix wins), else HLPower at `--alpha`.
fn binder_of(o: &Options) -> Binder {
    match &o.binder_spec {
        None => Binder::HlPower { alpha: o.alpha },
        Some(spec) => {
            let binder = Binder::parse(spec).unwrap_or_else(|| {
                bad_value(
                    "--binder",
                    spec,
                    "lopass | lopass-ic | lopass-sa | hlpower[:ALPHA] | hlpower-zd[:ALPHA]",
                )
            });
            // --alpha applies to the HLPower variants unless the spec
            // carried its own `:ALPHA`.
            if spec.contains(':') {
                binder
            } else {
                match binder {
                    Binder::HlPower { .. } => Binder::HlPower { alpha: o.alpha },
                    Binder::HlPowerZeroDelay { .. } => Binder::HlPowerZeroDelay { alpha: o.alpha },
                    other => other,
                }
            }
        }
    }
}

/// Builds the request the options describe around `source`.
fn request_of(o: &Options, source: hlpower::JobSource) -> JobRequest {
    let mut req = match source {
        hlpower::JobSource::Suite(name) => JobRequest::suite(name),
        hlpower::JobSource::CdfgText(text) => JobRequest::from_cdfg_text(text),
    };
    req = req
        .width(o.width)
        .sa_width(o.width.min(8))
        .binder(binder_of(o))
        .cycles(o.cycles)
        .lanes(o.lanes)
        .sa_mode(o.sa_mode)
        .fsm(o.fsm);
    if let Some(seed) = o.seed {
        req = req.seed(seed);
    }
    match (o.adders, o.mults) {
        (None, None) => {}
        (a, m) => {
            // A partially explicit constraint completes from the default
            // the source would resolve to.
            let d = req
                .clone()
                .resolve()
                .map(|(_, rc)| rc)
                .unwrap_or_else(|_| ResourceConstraint::new(2, 2));
            req = req.constraint(a.unwrap_or(d.addsub), m.unwrap_or(d.mul));
        }
    }
    req
}

/// Renders a report to the deterministic stdout block — identical bytes
/// whether the report came from a local [`Service`] or over the wire.
fn render_report(req: &JobRequest, rep: &JobReport) -> String {
    let r = &rep.result;
    let rc = req
        .clone()
        .resolve()
        .map(|(_, rc)| rc)
        .unwrap_or_else(|_| ResourceConstraint::new(0, 0));
    format!(
        "job:      {} via {}\n\
         schedule: {} steps under (add={}, mult={})\n\
         binding:  {} add/sub + {} mult FUs, {} SA queries{}\n\
         datapath: {} registers ({} control)\n\
         mapped:   {} LUTs, depth {}, estimated SA {:.1}\n\
         muxes:    largest {}, length {}, muxDiff mean {:.2} var {:.2}\n\
         measured: {:.2} mW dynamic, {:.1} ns clock, {:.1} M toggles/s/net, {:.0}% glitches\n",
        r.name,
        r.binder,
        r.schedule_steps,
        rc.addsub,
        rc.mul,
        r.fus_addsub,
        r.fus_mul,
        r.sa_queries,
        if r.meets_constraint {
            ""
        } else {
            "  [constraint NOT met]"
        },
        r.registers,
        if req.fsm { "fsm" } else { "external" },
        r.luts,
        r.depth,
        r.estimated_sa,
        r.mux.largest,
        r.mux.length,
        r.mux.muxdiff_mean(),
        r.mux.muxdiff_variance(),
        r.power.dynamic_power_mw,
        r.power.clock_period_ns,
        r.power.avg_toggle_rate_mhz,
        r.power.glitch_fraction * 100.0,
    )
}

/// Prints the per-request stage/store accounting to stderr — the
/// observable evidence that a warm daemon or store executed nothing.
fn report_stats(rep: &JobReport) {
    eprintln!("stages: {}", rep.stats.stages);
    eprintln!("store: {}", rep.stats.store);
    // Only meaningful locally: a remote report carries no codec timings
    // (they describe the daemon's parse cost, which it keeps).
    if rep.stats.codec.total_ns() > 0 {
        eprintln!("codec: {}", rep.stats.codec);
    }
}

/// Seeds the SA cache the selected binder draws from using `--sa-table`,
/// if given. Tables with a mismatched width/LUT size/estimation mode are
/// refused (they would silently change Eq. 4 edge weights). Returns
/// whether writing back to the path is safe — a refused table belongs to
/// a different configuration and must not be clobbered.
fn load_table(o: &Options, pipeline: &hlpower::Pipeline, binder: Binder) -> bool {
    if let Some(path) = &o.sa_table {
        if let Ok(text) = std::fs::read_to_string(path) {
            match SaTable::from_text(&text) {
                Ok(t) => match pipeline.seed_sa_cache(binder, &t) {
                    Ok(stats) => {
                        eprintln!("loaded SA table `{path}`: {stats}");
                        if stats.conflicting > 0 {
                            eprintln!(
                                "warning: `{path}` disagrees with the current cache on \
                                 {} entries (cache values kept)",
                                stats.conflicting
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("ignoring SA table `{path}` and leaving it untouched: {e}");
                        return false;
                    }
                },
                Err(e) => {
                    // A corrupt file may still be mostly recoverable
                    // precomputed data — never overwrite it.
                    eprintln!("ignoring malformed SA table `{path}` and leaving it untouched: {e}");
                    return false;
                }
            }
        }
    }
    true
}

/// Persists the selected binder's SA cache back to `--sa-table`.
fn store_table(o: &Options, pipeline: &hlpower::Pipeline, binder: Binder) {
    if let Some(path) = &o.sa_table {
        let table = pipeline.sa_snapshot(binder);
        if let Err(e) = std::fs::write(path, table.to_text()) {
            eprintln!("cannot write SA table `{path}`: {e}");
        } else {
            eprintln!("saved SA table `{path}` ({} entries)", table.len());
        }
    }
}

/// Opens the artifact store a `--store` spec names (a directory, or
/// `remote:ADDR` for a daemon's hot store), exiting with a message on
/// failure. `role` names the store in the error.
fn open_store_or_die(spec: &str, format: StoreFormat, role: &str) -> ArtifactStore {
    ArtifactStore::open_spec_with(spec, format)
        .unwrap_or_else(|e| die(format!("cannot open {role} `{spec}`: {e}")))
}

/// Executes a `run`/`bench` request — remotely over `--remote`, else on
/// a local service — and renders the one true report block.
fn run_job(o: &Options, source: hlpower::JobSource) {
    let req = request_of(o, source);
    if let Some(addr) = &o.remote {
        for (flag, given) in [
            ("--vhdl", o.vhdl.is_some()),
            ("--blif", o.blif.is_some()),
            ("--dot", o.dot.is_some()),
            ("--sa-table", o.sa_table.is_some()),
            ("--store", o.store.is_some()),
        ] {
            if given {
                eprintln!(
                    "hlp: {flag} is local-only and cannot combine with --remote \
                     (the daemon holds its own store and artifacts stay server-side)"
                );
                usage();
            }
        }
        let endpoint = Endpoint::parse(addr);
        let rep = api::request(&endpoint, &req).unwrap_or_else(|e| die(e));
        print!("{}", render_report(&req, &rep));
        report_stats(&rep);
        return;
    }
    let service = match &o.store {
        Some(dir) => Service::new().with_store(Arc::new(open_store_or_die(
            dir,
            o.store_format,
            "artifact store",
        ))),
        None => Service::new(),
    };
    let binder = req.binder;
    let pipeline = service.pipeline(&req);
    let storable = load_table(o, &pipeline, binder);
    let wants_artifacts = o.vhdl.is_some() || o.blif.is_some() || o.dot.is_some();
    let mut artifacts: Vec<(String, String)> = Vec::new();
    let rep = if wants_artifacts {
        // Drive the pipeline directly so **one** binding run serves both
        // the report and the exported artifacts (`Service::execute`
        // hides the binding outcome and would force a second, equally
        // expensive bind). Same stage sequence and stats attribution as
        // the service path.
        let (g, rc) = req.resolve().unwrap_or_else(|e| die(e));
        let before = pipeline.stats();
        let prep = pipeline.prepare(&g, &rc);
        let outcome = pipeline.bind(&prep, binder);
        let result = pipeline.measure(&prep, &outcome, binder);
        pipeline.flush_store();
        let stats = pipeline.stats().since(&before);
        let dp = hlpower::elaborate(
            &g,
            &prep.sched,
            &prep.rb,
            &outcome.fb,
            &hlpower::DatapathConfig {
                width: o.width,
                control: if o.fsm {
                    ControlStyle::Fsm
                } else {
                    ControlStyle::External
                },
            },
        );
        if let Some(path) = &o.vhdl {
            artifacts.push((path.clone(), hlpower::write_vhdl(&dp)));
        }
        if let Some(path) = &o.blif {
            artifacts.push((path.clone(), netlist::write_blif(&dp.netlist)));
        }
        if let Some(path) = &o.dot {
            artifacts.push((path.clone(), cdfg::to_dot(&g, Some(&prep.sched))));
        }
        JobReport { result, stats }
    } else {
        service.execute(&req).unwrap_or_else(|e| die(e))
    };
    if storable {
        store_table(o, &pipeline, binder);
    }
    print!("{}", render_report(&req, &rep));
    report_stats(&rep);
    for (path, content) in &artifacts {
        write_or_die(path, content);
    }
}

fn write_or_die(path: &str, content: &str) {
    match std::fs::write(path, content) {
        Ok(()) => println!("wrote {path}"),
        Err(e) => die(format!("cannot write `{path}`: {e}")),
    }
}

/// `hlp serve`: bind the endpoint, then answer request lines (jobs and
/// artifact `store` verbs) until a graceful stop; `hlp serve --stop`
/// asks a running daemon to shut down.
fn serve(args: &[String]) -> ! {
    let mut socket: Option<String> = None;
    let mut port: Option<u16> = None;
    let mut store: Option<String> = None;
    let mut store_format = StoreFormat::default();
    let mut stop = false;
    let mut stats = false;
    let mut fsck_status = false;
    let mut opts = ServeOptions {
        log: true,
        handle_signals: true,
        ..ServeOptions::default()
    };
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let value = |i: &mut usize| take_value(args, i, &flag);
        match flag.as_str() {
            "--socket" => socket = Some(value(&mut i)),
            "--port" => port = Some(parsed(&flag, &value(&mut i), "a port number")),
            "--store" => store = Some(value(&mut i)),
            "--store-format" => {
                let v = value(&mut i);
                store_format =
                    StoreFormat::parse(&v).unwrap_or_else(|| bad_value(&flag, &v, "binary | text"));
            }
            "--stop" => stop = true,
            "--stats" => stats = true,
            "--fsck-status" => fsck_status = true,
            "--max-clients" => {
                let v = value(&mut i);
                opts.max_clients = parsed(&flag, &v, "a positive integer");
                if opts.max_clients == 0 {
                    bad_value(&flag, &v, "a positive integer");
                }
            }
            "--workers" => {
                let v = value(&mut i);
                opts.workers = parsed(&flag, &v, "a positive integer");
                if opts.workers == 0 {
                    bad_value(&flag, &v, "a positive integer");
                }
            }
            "--queue-depth" => {
                opts.queue_depth = parsed(&flag, &value(&mut i), "an integer");
            }
            "--flush-every" => {
                let secs: u64 = parsed(&flag, &value(&mut i), "a number of seconds (0 disables)");
                opts.flush_every = if secs == 0 {
                    None
                } else {
                    Some(std::time::Duration::from_secs(secs))
                };
            }
            other => {
                eprintln!("hlp serve: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }
    let endpoint = match (socket, port) {
        (Some(path), None) => Endpoint::Unix(path.into()),
        (None, Some(port)) => Endpoint::Tcp(format!("127.0.0.1:{port}")),
        _ => {
            eprintln!("hlp serve: exactly one of --socket PATH or --port N is required");
            usage()
        }
    };
    if usize::from(stop) + usize::from(stats) + usize::from(fsck_status) > 1 {
        eprintln!("hlp serve: --stop, --stats and --fsck-status are mutually exclusive");
        usage();
    }
    if stop {
        if store.is_some() {
            eprintln!("hlp serve: --stop takes only the endpoint to stop");
            usage();
        }
        match api::stop_daemon(&endpoint) {
            Ok(()) => {
                eprintln!("hlp serve: daemon at `{endpoint}` is stopping");
                exit(0)
            }
            Err(e) => die(format!("cannot stop daemon at `{endpoint}`: {e}")),
        }
    }
    if stats {
        // The snapshot is re-rendered through the same codec it crossed
        // the wire in, so scraping `hlp serve --stats` and speaking
        // `control stats` directly see identical bytes.
        match api::fetch_stats(&endpoint) {
            Ok(snapshot) => {
                print!("{}", snapshot.to_text());
                exit(0)
            }
            Err(e) => die(format!("cannot fetch stats from `{endpoint}`: {e}")),
        }
    }
    if fsck_status {
        match api::fetch_fsck_status(&endpoint) {
            Ok(status) => {
                print!("{}", status.to_text());
                exit(0)
            }
            Err(e) => die(format!("cannot fetch fsck status from `{endpoint}`: {e}")),
        }
    }
    let service = match &store {
        Some(spec) => Service::new().with_store(Arc::new(open_store_or_die(
            spec,
            store_format,
            "artifact store",
        ))),
        None => Service::new(),
    };
    let server =
        Server::bind(&endpoint).unwrap_or_else(|e| die(format!("cannot bind `{endpoint}`: {e}")));
    eprintln!(
        "hlp serve: listening on {endpoint}{} (at most {} client(s), {} queued, {} worker(s))",
        match &store {
            Some(spec) => format!(" (hot store `{spec}`)"),
            None => " (no store: every request recomputes)".to_string(),
        },
        opts.max_clients,
        opts.queue_depth,
        opts.effective_workers(),
    );
    match server.serve_with(Arc::new(service), opts) {
        Ok(()) => {
            eprintln!("hlp serve: stopped");
            exit(0)
        }
        Err(e) => die(format!("serve failed: {e}")),
    }
}

/// `hlp batch`: parse every request line in FILE (or stdin), ship them
/// to a daemon as one `batch N` frame, and render the reports in
/// request order — stdout is byte-identical to running the same lines
/// sequentially, the round-trip count is 1 instead of N, and the daemon
/// schedules the jobs longest-first across its worker pool.
fn batch(args: &[String]) -> ! {
    let mut remote: Option<String> = None;
    let mut file: Option<String> = None;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        match flag.as_str() {
            "--remote" => remote = Some(take_value(args, &mut i, &flag)),
            other if other.starts_with("--") => {
                eprintln!("hlp batch: unknown flag `{other}`");
                usage()
            }
            operand => {
                if file.is_some() {
                    eprintln!("hlp batch: more than one input file");
                    usage()
                }
                file = Some(operand.to_string());
            }
        }
        i += 1;
    }
    let Some(addr) = remote else {
        eprintln!("hlp batch: --remote ADDR is required (batches execute on a daemon)");
        usage()
    };
    let text = match file.as_deref() {
        Some(path) if path != "-" => std::fs::read_to_string(path)
            .unwrap_or_else(|e| die(format!("cannot read `{path}`: {e}"))),
        _ => {
            let mut s = String::new();
            std::io::Read::read_to_string(&mut std::io::stdin(), &mut s)
                .unwrap_or_else(|e| die(format!("cannot read stdin: {e}")));
            s
        }
    };
    // Parse locally so a typo names the offending line here instead of
    // surfacing as a mid-batch daemon rejection.
    let mut reqs = Vec::new();
    for (lineno, line) in text.lines().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match JobRequest::parse_line(line) {
            Ok(req) => reqs.push(req),
            Err(e) => die(format!("bad request line {}: {e}", lineno + 1)),
        }
    }
    if reqs.is_empty() {
        die("no request lines to batch");
    }
    let endpoint = Endpoint::parse(&addr);
    let replies = api::request_batch(&endpoint, &reqs).unwrap_or_else(|e| die(e));
    let mut failed = false;
    for (req, reply) in reqs.iter().zip(&replies) {
        match reply {
            Ok(rep) => {
                print!("{}", render_report(req, rep));
                report_stats(rep);
            }
            Err(e) => {
                eprintln!("hlp batch: job `{}` failed: {e}", req.to_line());
                failed = true;
            }
        }
    }
    exit(i32::from(failed))
}

/// Formats a netlist check verdict: a one-line summary for a clean
/// pass, the first error (plus the count) otherwise.
fn netlist_verdict(nl: &netlist::Netlist, what: &str) -> Result<String, String> {
    let report = netlist::check_netlist(nl);
    if report.is_clean() {
        Ok(format!(
            "{what}: {} node(s) checked, {} warning(s)",
            report.checked_nodes,
            report.warnings()
        ))
    } else {
        let first = report
            .violations
            .iter()
            .find(|v| v.severity() == netlist::Severity::Error)
            .expect("unclean report has an error");
        Err(format!(
            "{what} fails semantic check ({} error(s); first: {first})",
            report.errors()
        ))
    }
}

/// Audits one file for `hlp check`, dispatching on what it holds:
/// `.blif` and `.cdfg` sources parse and run their semantic checker;
/// everything else is treated as store-artifact bytes (either format,
/// sniffed) and audited like `hlp fsck` would.
fn check_one(path: &str) -> Result<String, String> {
    let data = std::fs::read(path).map_err(|e| format!("cannot read: {e}"))?;
    if path.ends_with(".blif") {
        let text =
            String::from_utf8(data).map_err(|_| "BLIF file is not UTF-8 text".to_string())?;
        let file = netlist::parse_blif(&text).map_err(|e| format!("BLIF parse: {e}"))?;
        // Flattening itself refuses combinational loops and dangling
        // nets; whatever it accepts still gets the exhaustive checker.
        let nl = file
            .flatten(None, &[])
            .map_err(|e| format!("BLIF elaboration: {e}"))?;
        netlist_verdict(&nl, "BLIF netlist")
    } else if path.ends_with(".cdfg") {
        let text =
            String::from_utf8(data).map_err(|_| "CDFG file is not UTF-8 text".to_string())?;
        let (g, _sched) = cdfg::parse_cdfg(&text).map_err(|e| format!("CDFG parse: {e}"))?;
        let report = cdfg::check_cdfg(&g);
        if report.is_clean() {
            Ok(format!("CDFG: {} op(s) checked", report.checked_ops))
        } else {
            let first = report
                .violations
                .iter()
                .find(|v| v.is_error())
                .expect("unclean report has an error");
            Err(format!(
                "CDFG fails semantic check ({} error(s); first: {first})",
                report.errors()
            ))
        }
    } else {
        hlpower::audit_artifact_auto(&data)
    }
}

/// Repairs one file in place for `hlp check --fix`: the original is
/// kept at `FILE.bak` and the fix must re-audit clean before the slot
/// is rewritten. Source files (`.blif`/`.cdfg`) are check-only.
fn fix_one(path: &str) -> Result<String, String> {
    if path.ends_with(".blif") || path.ends_with(".cdfg") {
        // Sources are authored, not derived; a mechanical rewrite of
        // them would edit the user's input. Check only.
        return check_one(path).map(|s| format!("{s} (source file, check only)"));
    }
    let data = std::fs::read(path).map_err(|e| format!("cannot read: {e}"))?;
    match hlpower::fix_artifact_auto(&data) {
        hlpower::FixVerdict::Clean(summary) => Ok(format!("{summary} (no fix needed)")),
        hlpower::FixVerdict::Fixed {
            bytes,
            applied,
            passes,
            summary,
        } => {
            let backup = format!("{path}.bak");
            std::fs::write(&backup, &data)
                .map_err(|e| format!("cannot back up original to `{backup}`: {e}"))?;
            std::fs::write(path, &bytes).map_err(|e| format!("cannot rewrite: {e}"))?;
            Ok(format!(
                "fixed ({applied} edit(s), {passes} pass(es)); {summary}; original at {backup}"
            ))
        }
        hlpower::FixVerdict::Unfixable(problem) => Err(problem),
    }
}

/// `hlp check [--fix] FILE...`: static checking of netlists, CDFGs, and
/// store artifacts, one verdict line per file. Exit 1 when any file
/// fails. `--fix` mechanically repairs netlist-carrying files in place
/// (original kept at `FILE.bak`).
fn check_files(args: &[String]) {
    let fix = args.iter().any(|a| a == "--fix");
    let files: Vec<&String> = args.iter().filter(|a| *a != "--fix").collect();
    if files.is_empty() {
        eprintln!("hlp check: at least one file argument is required");
        usage()
    }
    let mut failed = 0usize;
    for path in files.iter() {
        let verdict = if fix { fix_one(path) } else { check_one(path) };
        match verdict {
            Ok(summary) => println!("ok: {path}: {summary}"),
            Err(problem) => {
                println!("bad: {path}: {problem}");
                failed += 1;
            }
        }
    }
    if failed > 0 {
        eprintln!("hlp check: {failed} of {} file(s) failed", files.len());
        exit(1);
    }
}

/// `hlp fsck`: audit every artifact in a store — incrementally, via the
/// persisted audit watermarks — optionally repairing defects
/// (`--repair` quarantines, `--repair=fix` tries a mechanical fix
/// first). Exit 1 when any artifact fails. Remote stores are audited
/// in place by their daemon: verdicts cross the wire, bodies do not.
fn fsck(args: &[String]) {
    use hlpower::{FsckOptions, RepairMode};
    let mut store: Option<String> = None;
    let mut repair = RepairMode::Off;
    let mut full = false;
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        match flag.as_str() {
            "--store" => store = Some(take_value(args, &mut i, &flag)),
            "--repair" => repair = RepairMode::Quarantine,
            "--repair=fix" => repair = RepairMode::Fix,
            "--full" => full = true,
            other => {
                eprintln!("hlp fsck: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }
    let Some(spec) = store else {
        eprintln!("hlp fsck: --store DIR|remote:ADDR is required");
        usage()
    };
    // Strict open for directories: fsck must never materialize an empty
    // store at a mistyped path (and then report it clean).
    let store = if spec.starts_with("remote:") {
        ArtifactStore::open_spec(&spec)
            .unwrap_or_else(|e| die(format!("cannot reach remote store: {e}")))
    } else {
        ArtifactStore::open_existing(&spec)
            .unwrap_or_else(|e| die(format!("cannot open artifact store: {e}")))
    };
    let report = store
        .fsck_with(&FsckOptions { repair, full })
        .unwrap_or_else(|e| die(format!("fsck of `{spec}` failed: {e}")));
    println!("{report}");
    if !report.is_clean() {
        exit(1);
    }
}

/// `hlp gc`: per-kind size accounting, optional age/size pruning.
fn gc(args: &[String]) {
    let mut store: Option<String> = None;
    let mut policy = GcPolicy::default();
    let mut i = 0;
    while i < args.len() {
        let flag = args[i].clone();
        let value = |i: &mut usize| take_value(args, i, &flag);
        match flag.as_str() {
            "--store" => store = Some(value(&mut i)),
            "--max-age-days" => {
                let v = value(&mut i);
                let days: f64 = parsed(&flag, &v, "a number of days");
                // try_from_secs_f64 rejects NaN, negatives, infinities,
                // and out-of-range magnitudes in one place — a huge value
                // must be a flag diagnostic (exit 2), never a panic.
                policy.max_age = Some(
                    std::time::Duration::try_from_secs_f64(days * 86_400.0).unwrap_or_else(|_| {
                        bad_value(&flag, &v, "a finite, non-negative number of days")
                    }),
                );
            }
            "--max-bytes" => {
                policy.max_bytes = Some(parsed(&flag, &value(&mut i), "a byte count"));
            }
            other => {
                eprintln!("hlp gc: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }
    let Some(dir) = store else {
        eprintln!("hlp gc: --store DIR is required");
        usage()
    };
    if dir.starts_with("remote:") {
        // Size accounting and pruning walk the filesystem holding the
        // bytes; a remote handle cannot (and must not) do either.
        eprintln!(
            "hlp gc: gc is local-only; run it on the daemon host against its store directory"
        );
        usage()
    }
    // gc must never silently materialize an empty store at a mistyped
    // path, so it opens strictly.
    let store = ArtifactStore::open_existing(&dir)
        .unwrap_or_else(|e| die(format!("cannot open artifact store: {e}")));
    let usage_before = store
        .usage()
        .unwrap_or_else(|e| die(format!("cannot size `{dir}`: {e}")));
    println!("{usage_before}");
    if policy.max_age.is_none() && policy.max_bytes.is_none() {
        return;
    }
    let report = store
        .gc(&policy)
        .unwrap_or_else(|e| die(format!("gc of `{dir}` failed: {e}")));
    println!("gc: {report}");
}

/// `hlp store convert DIR`: re-encode every artifact in place into the
/// target format (binary unless `--store-format text`). Unreadable
/// files are left untouched and counted, never deleted.
fn store_command(args: &[String]) {
    let Some(verb) = args.first() else {
        eprintln!("hlp store: missing verb (expected `convert`)");
        usage()
    };
    if verb != "convert" {
        eprintln!("hlp store: unknown verb `{verb}` (expected `convert`)");
        usage()
    }
    let Some(dir) = args.get(1) else {
        eprintln!("hlp store convert: missing store directory argument");
        usage()
    };
    if dir.starts_with("remote:") {
        eprintln!(
            "hlp store convert: conversion is local-only; run it on the daemon host \
             against its store directory"
        );
        usage()
    }
    let mut format = StoreFormat::default();
    let mut i = 2;
    while i < args.len() {
        let flag = args[i].clone();
        match flag.as_str() {
            "--store-format" => {
                let v = take_value(args, &mut i, &flag);
                format =
                    StoreFormat::parse(&v).unwrap_or_else(|| bad_value(&flag, &v, "binary | text"));
            }
            other => {
                eprintln!("hlp store convert: unknown flag `{other}`");
                usage()
            }
        }
        i += 1;
    }
    // Strict open: convert must not materialize an empty store at a
    // mistyped path.
    let store = ArtifactStore::open_existing(dir)
        .unwrap_or_else(|e| die(format!("cannot open artifact store: {e}")));
    let report = store
        .convert(format)
        .unwrap_or_else(|e| die(format!("conversion of `{dir}` failed: {e}")));
    println!("converted `{dir}` to {}: {report}", format.name());
    if report.failed > 0 {
        exit(1);
    }
}

fn main() {
    let argv: Vec<String> = std::env::args().skip(1).collect();
    let Some(command) = argv.first() else { usage() };
    match command.as_str() {
        "run" => {
            let Some(path) = argv.get(1) else {
                eprintln!("hlp run: missing CDFG file argument");
                usage()
            };
            let o = parse_options(&argv[2..]);
            let text = std::fs::read_to_string(path)
                .unwrap_or_else(|e| die(format!("cannot read `{path}`: {e}")));
            // Parse locally even for --remote so syntax errors name the
            // file instead of surfacing as daemon rejections.
            cdfg::parse_cdfg(&text)
                .unwrap_or_else(|e| die(format!("parse error in `{path}`: {e}")));
            run_job(&o, hlpower::JobSource::CdfgText(text));
        }
        "bench" => {
            let Some(name) = argv.get(1) else {
                eprintln!("hlp bench: missing benchmark name (try `hlp suite`)");
                usage()
            };
            if cdfg::profile(name).is_none() {
                eprintln!(
                    "hlp: invalid value `{name}` for bench: expected a benchmark from `hlp suite`"
                );
                usage();
            }
            let o = parse_options(&argv[2..]);
            run_job(&o, hlpower::JobSource::Suite(name.clone()));
        }
        "serve" => serve(&argv[1..]),
        "batch" => batch(&argv[1..]),
        "check" => check_files(&argv[1..]),
        "fsck" => fsck(&argv[1..]),
        "gc" => gc(&argv[1..]),
        "store" => store_command(&argv[1..]),
        "table" => {
            let Some(out) = argv.get(1) else {
                eprintln!("hlp table: missing output path argument");
                usage()
            };
            let o = parse_options(&argv[2..]);
            if o.sa_mode == SaMode::Dynamic {
                // Dynamic mode is a run/bench ablation (uncached
                // estimation); it never memoizes, so there is nothing to
                // precompute into a file.
                eprintln!("--sa-mode dynamic never memoizes, so there is no table to store");
                usage();
            }
            let mut table = SaTable::new(o.width.min(8), 4).with_mode(o.sa_mode);
            eprintln!(
                "precomputing SA table up to 8x8 muxes (width {}, mode {})...",
                table.width(),
                o.sa_mode.name()
            );
            table.precompute(8);
            write_or_die(out, &table.to_text());
            // With --store, the precomputed entries also land in the
            // store's SA shard, so later --store runs start warm.
            if let Some(dir) = &o.store {
                let store = open_store_or_die(dir, o.store_format, "artifact store");
                let stats = store.merge_sa_table(&table);
                eprintln!("merged into store `{dir}`: {stats}");
            }
        }
        "merge" => {
            // Fan-in of a sharded run: union every source store into the
            // destination. Content-addressed artifacts copy over (byte
            // conflicts are reported, destination wins); SA shards merge
            // entry-wise with conflict accounting.
            let Some(dst) = argv.get(1) else {
                eprintln!("hlp merge: missing destination store argument");
                usage()
            };
            if argv.len() < 3 {
                eprintln!("merge needs at least one source store");
                usage();
            }
            let dst_store = open_store_or_die(dst, StoreFormat::default(), "destination store");
            let mut failed = false;
            for src in &argv[2..] {
                // Sources are read-only inputs: a mistyped path must fail
                // loudly, never be created (or half-planted inside some
                // existing directory) as an empty store.
                let src_store = ArtifactStore::open_existing(src)
                    .unwrap_or_else(|e| die(format!("cannot open source store: {e}")));
                match dst_store.merge_from(&src_store) {
                    Ok(report) => {
                        println!("merged `{src}` into `{dst}`: {report}");
                        if report.conflicting > 0 || report.sa.conflicting > 0 {
                            eprintln!(
                                "warning: `{src}` conflicts with `{dst}` \
                                 ({} artifact(s), {} SA entries) — destination values kept",
                                report.conflicting, report.sa.conflicting
                            );
                        }
                    }
                    Err(e) => {
                        eprintln!("merging `{src}` into `{dst}` failed: {e}");
                        failed = true;
                    }
                }
            }
            if failed {
                exit(1);
            }
        }
        "suite" => {
            if argv.get(1).map(String::as_str) == Some("--requests") {
                // Machine-readable: one canonical request line per
                // benchmark, with the paper constraint made explicit, so
                // scripts can edit knobs and pipe lines straight to a
                // daemon socket without scraping the human table.
                for p in &cdfg::PROFILES {
                    let rc = hlpower::paper_constraint(p.name).expect("suite constraint");
                    println!(
                        "{}",
                        JobRequest::suite(p.name)
                            .constraint(rc.addsub, rc.mul)
                            .to_line()
                    );
                }
                return;
            }
            if let Some(flag) = argv.get(1) {
                eprintln!("hlp suite: unknown flag `{flag}` (did you mean --requests?)");
                usage();
            }
            println!("built-in benchmarks (paper Table 1):");
            for p in &cdfg::PROFILES {
                let rc = hlpower::paper_constraint(p.name).expect("suite constraint");
                println!(
                    "  {:6}  {:3} PIs {:3} POs {:4} adds {:4} mults  (constraint add={} mult={})",
                    p.name, p.pis, p.pos, p.adds, p.muls, rc.addsub, rc.mul
                );
            }
        }
        "--help" | "-h" | "help" => usage(),
        other => {
            eprintln!("unknown command `{other}`");
            usage()
        }
    }
}
